// Package haac is the public API of the HAAC reproduction: a garbled-
// circuits stack (circuit builder, FreeXOR + re-keyed half-gates
// garbling, two-party protocol) together with the HAAC accelerator
// co-design from "HAAC: A Hardware-Software Co-Design to Accelerate
// Garbled Circuits" (ISCA 2023) — the optimizing compiler (reordering,
// renaming, eliminating spent wires, stream generation) and the
// cycle-level accelerator simulator (gate engines, sliding wire window,
// queues, DDR4/HBM2 streaming).
//
// The default garbling hash everywhere (Run2PC, GarbleAndEvaluate, the
// protocol options) is the paper's secure re-keyed construction: each
// AND gate derives fresh AES keys from its gate index. Its software
// hot path expands each key once into pooled scratch and reuses the
// schedule across the gate's blocks, so re-keying costs two key
// expansions per garbled gate and zero steady-state allocations —
// the same cost model as HAAC's Half-Gate pipeline, quantified by the
// "rekey" experiment in cmd/haacbench.
//
// Typical flows:
//
//	// Build a circuit and run it as a real two-party computation.
//	b := haac.NewBuilder()
//	x := b.GarblerInputs(32)
//	y := b.EvaluatorInputs(32)
//	b.OutputWord(b.Add(x, y))
//	c := b.MustBuild()
//	out, err := haac.Run2PC(c, garblerBits, evalBits)
//
//	// The same computation with the parallel level-scheduled engine
//	// and the pipelined table stream: gates at the same dependence
//	// level are garbled by a worker pool and each level's tables go on
//	// the wire as soon as they are ready, overlapping garbling,
//	// transfer and evaluation like the paper's table-queue design.
//	out, err = haac.Run2PCWith(c, garblerBits, evalBits,
//		haac.RunOptions{Workers: 8, Pipelined: true})
//
//	// Compile the same circuit for the accelerator and estimate its
//	// performance on the paper's 16-GE design.
//	cp, err := haac.Compile(c, haac.DefaultCompilerConfig())
//	res, err := haac.Simulate(cp, haac.DefaultHW())
//	fmt.Println(res.Time())
//
// The examples/ directory contains runnable programs for both paths and
// cmd/haacbench regenerates every table and figure of the paper.
package haac

import (
	"crypto/tls"
	"fmt"
	"net"

	"haac/internal/builder"
	"haac/internal/circuit"
	"haac/internal/compiler"
	"haac/internal/energy"
	"haac/internal/fleet"
	"haac/internal/gc"
	"haac/internal/label"
	"haac/internal/ot"
	"haac/internal/proto"
	"haac/internal/server"
	"haac/internal/sim"
	"haac/internal/workloads"
)

// Core circuit types.
type (
	// Circuit is the Boolean-circuit IR shared by garbling, compilation
	// and simulation.
	Circuit = circuit.Circuit
	// Gate is one gate of a Circuit.
	Gate = circuit.Gate
	// Wire identifies a circuit wire.
	Wire = circuit.Wire
	// Stats summarizes a circuit (gate counts, depth, ILP — Table 2).
	Stats = circuit.Stats
	// Builder constructs circuits from word-level operations.
	Builder = builder.B
	// Word is a little-endian bit-vector value in the Builder.
	Word = builder.Word
	// Workload is a named benchmark circuit with input generator and
	// native reference oracle.
	Workload = workloads.Workload
)

// Compiler and simulator types.
type (
	// CompilerConfig selects reordering/renaming/ESW and the hardware
	// shape the program is scheduled for.
	CompilerConfig = compiler.Config
	// ReorderMode selects Baseline, FullReorder or SegmentReorder.
	ReorderMode = compiler.ReorderMode
	// Compiled is a compiled HAAC program with its per-GE streams.
	Compiled = compiler.Compiled
	// HW is an accelerator configuration.
	HW = sim.HW
	// DRAM is a streaming memory model.
	DRAM = sim.DRAM
	// Result is a simulation outcome (cycles, traffic, events).
	Result = sim.Result
	// EnergyBreakdown is the per-component energy split of Fig. 9.
	EnergyBreakdown = energy.Breakdown
)

// Reorder modes, re-exported.
const (
	Baseline       = compiler.Baseline
	FullReorder    = compiler.FullReorder
	SegmentReorder = compiler.SegmentReorder
)

// DRAM presets from the paper's methodology.
var (
	DDR4 = sim.DDR4
	HBM2 = sim.HBM2
)

// NewBuilder returns an empty circuit builder.
func NewBuilder() *Builder { return builder.New() }

// DefaultCompilerConfig is the paper's headline compiler setting:
// full reorder + renaming + ESW for a 16-GE, 2 MB-SWW Evaluator.
func DefaultCompilerConfig() CompilerConfig { return compiler.DefaultConfig() }

// DefaultHW is the paper's headline hardware: 16 GEs, 2 MB SWW,
// 4 banks/GE, 1 GHz/2 GHz clocks, DDR4.
func DefaultHW() HW { return sim.DefaultHW() }

// Compile lowers a circuit to a HAAC program and runs the configured
// optimization passes.
func Compile(c *Circuit, cfg CompilerConfig) (*Compiled, error) {
	return compiler.Compile(c, cfg)
}

// Simulate runs a compiled program on a hardware configuration.
func Simulate(cp *Compiled, hw HW) (Result, error) { return sim.Simulate(cp, hw) }

// EnergyOf prices a simulation result with the Table 4 energy model.
func EnergyOf(r Result) EnergyBreakdown { return energy.Energy(r) }

// AreaOf returns the accelerator area in mm^2 for a configuration.
func AreaOf(hw HW) float64 {
	return energy.AreaFor(hw.NumGEs, hw.SWWWires*16).Total()
}

// Eval evaluates a circuit on plaintext inputs (the functional model).
func Eval(c *Circuit, garbler, evaluator []bool) ([]bool, error) {
	return c.Eval(garbler, evaluator)
}

// GarbleAndEvaluate runs the whole garbled execution locally (garble,
// encode, evaluate, decode) with the paper's re-keyed hash. It returns
// the plaintext outputs and is the simplest way to check a circuit
// under real garbling.
func GarbleAndEvaluate(c *Circuit, garbler, evaluator []bool, seed uint64) ([]bool, error) {
	seed, err := defaultSeed(seed)
	if err != nil {
		return nil, err
	}
	return gc.Run(c, gc.RekeyedHasher{}, seed, garbler, evaluator)
}

// defaultSeed draws a random nonzero seed when the caller passed zero.
func defaultSeed(seed uint64) (uint64, error) {
	if seed != 0 {
		return seed, nil
	}
	l, err := label.Rand()
	if err != nil {
		return 0, err
	}
	return l.Lo | 1, nil
}

// GarbleAndEvaluateWith is GarbleAndEvaluate on the parallel
// level-scheduled engine: garbling and evaluation each run across
// opts.Workers workers. Workers follows the RunOptions contract —
// 0 or 1 runs the engine single-threaded. The garbled output is
// byte-identical to the sequential path for the same seed.
func GarbleAndEvaluateWith(c *Circuit, garbler, evaluator []bool, seed uint64, opts RunOptions) ([]bool, error) {
	seed, err := defaultSeed(seed)
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	h := gc.RekeyedHasher{}
	if opts.Plan != nil {
		if opts.Plan.Circuit() != c {
			return nil, fmt.Errorf("haac: RunOptions.Plan was compiled from a different circuit")
		}
		g, err := gc.ParallelGarblePlan(opts.Plan.plan, h, label.NewSource(seed), workers)
		if err != nil {
			return nil, err
		}
		in, err := g.EncodeInputs(c, garbler, evaluator)
		if err != nil {
			return nil, err
		}
		out, err := gc.ParallelEvalPlan(opts.Plan.plan, h, in, g.Tables, workers)
		if err != nil {
			return nil, err
		}
		return g.Decode(out)
	}
	g, err := gc.ParallelGarble(c, h, label.NewSource(seed), workers)
	if err != nil {
		return nil, err
	}
	in, err := g.EncodeInputs(c, garbler, evaluator)
	if err != nil {
		return nil, err
	}
	out, err := gc.ParallelEval(c, h, in, g.Tables, workers)
	if err != nil {
		return nil, err
	}
	return g.Decode(out)
}

// Precompiled is a reusable execution plan for one circuit: the wire
// space renamed onto a compact slot arena of width ≈ peak-live wires
// plus the cached level schedule — the paper's rename-and-evict memory
// idea (§3.1.4) applied to the software garbling engines. Build it once
// with Precompile and pass it via RunOptions.Plan to every
// Run2PCWith/RunGarblerWith/RunEvaluatorWith/GarbleAndEvaluateWith call
// on the same circuit; repeated runs then amortize schedule
// construction and renaming entirely and execute over arenas sized by
// peak-live width instead of total wires. A Precompiled is immutable
// and safe for concurrent use.
type Precompiled struct {
	plan *circuit.Plan
}

// Precompile builds the reusable execution plan for a circuit.
func Precompile(c *Circuit) (*Precompiled, error) {
	p, err := circuit.NewPlan(c)
	if err != nil {
		return nil, err
	}
	return &Precompiled{plan: p}, nil
}

// Circuit returns the circuit the plan was compiled from.
func (p *Precompiled) Circuit() *Circuit { return p.plan.Circuit }

// NumSlots returns the width of the renamed slot space — the label
// arena a planned run touches, against the circuit's NumWires.
func (p *Precompiled) NumSlots() int { return p.plan.NumSlots }

// PeakLive returns the maximum number of simultaneously live wires.
func (p *Precompiled) PeakLive() int { return p.plan.PeakLive }

// RunOptions configures the execution engine of the two-party protocol
// and the local garbling helpers.
type RunOptions struct {
	// Workers is the width of the parallel level-scheduled garbling and
	// evaluation engine. 0 or 1 keeps the classic sequential path
	// (unless Pipelined is set, where 0 means one worker per CPU);
	// values > 1 use gc.ParallelGarble / gc.ParallelEval.
	Workers int
	// Pipelined overlaps garbling, table transfer and evaluation: the
	// garbler streams each dependence level's tables as the worker pool
	// completes them while the evaluator consumes tables concurrently —
	// the software analogue of HAAC streaming tables through its table
	// queues. The wire format is unchanged, so a pipelined party
	// interoperates with a sequential one.
	Pipelined bool
	// Plan, when non-nil, must come from Precompile on the same circuit
	// the run executes; the engines selected by Workers/Pipelined then
	// run over the plan's slot arena and cached schedule. The wire
	// format is unchanged, so a planned party interoperates with an
	// unplanned peer.
	Plan *Precompiled
	// Retry is the self-healing policy of sessions opened with Dial or
	// DialWith: with MaxAttempts > 1 the initial dial retries with capped
	// exponential backoff, and Session.Run transparently redials,
	// re-handshakes (the server re-verifies the circuit digest) and
	// replays a run broken by a drop, reset, deadline, malformed frame or
	// busy/draining refusal. Replay is safe because a run is a pure
	// function of its inputs — the server commits nothing until a run
	// completes. The zero policy disables retry; the direct-connection
	// entry points (Run2PC, RunGarbler, RunEvaluator) ignore it.
	Retry RetryPolicy
	// TLS, when non-nil, makes Dial/DialWith (and DialFleet) connect over
	// TLS — set ServerName (or InsecureSkipVerify plus certificate
	// pinning in tests) to authenticate the garbler. The peer must serve
	// with ServerConfig.TLS / FleetConfig.TLS. nil keeps the plaintext
	// default; the direct-connection entry points ignore it.
	TLS *tls.Config
	// Integrity requests the checksummed-frame wire tier: every
	// post-handshake byte travels in length+CRC32C frames, so corruption
	// anywhere in the stream surfaces as a typed retryable ErrIntegrity
	// instead of silently wrong outputs, and a session under a retry
	// policy resumes a broken bulk transfer from the last verified chunk
	// instead of replaying it. Sessions negotiate the tier at handshake
	// and fall back to the legacy wire against servers that decline
	// (check Session.Integrity); the direct-connection entry points
	// frame both directions unconditionally when set.
	Integrity bool
	// MaxRunBytes, when positive, bounds the transport bytes a dialed
	// session moves for one run; a breach surfaces as a permanent
	// ErrOverBudget. The server-side mirror is ServerConfig.MaxRunBytes.
	MaxRunBytes int64
	// PoolSize, when positive, asks Dial/DialWith (and DialFleet) for the
	// precomputed-OT session tier: the session banks about this many
	// random-OT correlations — base OTs and IKNP extension paid at dial
	// time and topped up in the background between runs — so a
	// steady-state Run's online oblivious transfer is a single
	// choice-correction XOR round with no public-key operations. Size it
	// at several runs' worth of evaluator inputs; a run that finds the
	// pool short falls back to on-demand OT for that run. Servers that
	// decline the tier (ServerConfig.DisablePooledOT) accept the session
	// unpooled — check Session.Pooled. The direct-connection entry
	// points ignore it.
	PoolSize int
	// PoolRefill is the background top-up chunk of a pooled session
	// (correlations per refill op). Default PoolSize/4.
	PoolRefill int
}

func (o RunOptions) proto() proto.Options {
	popts := proto.Options{OT: ot.DH, Workers: o.Workers, Pipelined: o.Pipelined, Integrity: o.Integrity}
	if o.Plan != nil {
		popts.Plan = o.Plan.plan
	}
	return popts
}

// Run2PC executes a real two-party computation over an in-memory
// connection: the calling process plays both roles on separate
// goroutines, with labels transferred via oblivious transfer. Useful
// for tests and demos; for networked execution see RunGarbler and
// RunEvaluator.
func Run2PC(c *Circuit, garbler, evaluator []bool) ([]bool, error) {
	return Run2PCWith(c, garbler, evaluator, RunOptions{})
}

// Run2PCWith is Run2PC with explicit engine options — e.g.
// RunOptions{Workers: 8, Pipelined: true} for the parallel pipelined
// path.
func Run2PCWith(c *Circuit, garbler, evaluator []bool, opts RunOptions) ([]bool, error) {
	ga, ev := net.Pipe()
	defer ga.Close()
	defer ev.Close()
	popts := opts.proto()
	type res struct {
		bits []bool
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		bits, err := proto.RunGarbler(ga, c, garbler, popts)
		ch <- res{bits, err}
	}()
	out, err := proto.RunEvaluator(ev, c, evaluator, popts)
	if err != nil {
		return nil, err
	}
	gr := <-ch
	if gr.err != nil {
		return nil, fmt.Errorf("garbler: %w", gr.err)
	}
	return out, nil
}

// RunGarbler plays the garbler over conn (e.g. a TCP connection).
func RunGarbler(conn net.Conn, c *Circuit, garblerBits []bool) ([]bool, error) {
	return proto.RunGarbler(conn, c, garblerBits, proto.Options{OT: ot.DH})
}

// RunGarblerWith plays the garbler with explicit engine options.
func RunGarblerWith(conn net.Conn, c *Circuit, garblerBits []bool, opts RunOptions) ([]bool, error) {
	return proto.RunGarbler(conn, c, garblerBits, opts.proto())
}

// RunEvaluator plays the evaluator over conn.
func RunEvaluator(conn net.Conn, c *Circuit, evalBits []bool) ([]bool, error) {
	return proto.RunEvaluator(conn, c, evalBits, proto.Options{OT: ot.DH})
}

// RunEvaluatorWith plays the evaluator with explicit engine options.
func RunEvaluatorWith(conn net.Conn, c *Circuit, evalBits []bool, opts RunOptions) ([]bool, error) {
	return proto.RunEvaluator(conn, c, evalBits, opts.proto())
}

// Serving layer types, re-exported from internal/server: a concurrent
// 2PC garbler service with a shared precompiled-plan cache, per-circuit
// pooled runners, session handshakes bound to circuit digests, and
// graceful connection-draining shutdown.
type (
	// Server is a concurrent 2PC garbler service. Beyond Serve/Close it
	// carries the fleet operability surface: ServeOps/OpsHandler expose
	// /healthz and Prometheus /metrics over HTTP, and Stats snapshots
	// the counters behind them.
	Server = server.Server
	// ServerConfig configures a Server (circuits, plan-cache bound,
	// engine width, deterministic seeds for tests) and its operational
	// envelope: MaxSessions admission with typed ErrBusy shedding,
	// RunTimeout per-run deadlines, DrainTimeout-bounded Close, the
	// MaxPoolSize/DisablePooledOT precomputed-OT knobs, and the
	// AllowInsecureOT escape hatch for benchmarks.
	ServerConfig = server.Config
	// ServedCircuit registers one servable circuit with its garbler
	// input supplier.
	ServedCircuit = server.CircuitSpec
	// ServerStats is a snapshot of a server's counters: active sessions,
	// runs served/failed, cumulative run latency, bytes out/in,
	// plan-cache hits/misses/evictions, and admission/drain refusal
	// counts — the same numbers /metrics exports.
	ServerStats = server.Stats
	// Session is a client (evaluator) session against a serving garbler;
	// call Run repeatedly, Close when done.
	Session = server.Session
	// PlanCache is the shared build-once, LRU-bounded plan cache behind
	// a Server, usable standalone.
	PlanCache = server.PlanCache
	// RetryPolicy configures session self-healing: dial retries with
	// capped exponential backoff plus jitter, per-attempt handshake
	// deadlines, and transparent redial-and-replay inside Session.Run.
	RetryPolicy = server.RetryPolicy
	// ClientStats counts a session's self-healing activity — runs,
	// retries, reconnects, dial failures — plus its OT-pool hit/miss/
	// refill counters, and renders it in Prometheus text format via
	// MetricsText, mirroring the server's /metrics.
	ClientStats = server.ClientStats
)

// Typed serving errors, re-exported for errors.Is checks.
var (
	// ErrUnknownCircuit: the server has no circuit under the dialed id.
	ErrUnknownCircuit = server.ErrUnknownCircuit
	// ErrDigestMismatch: the client's circuit differs structurally from
	// the server's.
	ErrDigestMismatch = server.ErrDigestMismatch
	// ErrDraining: the server is shutting down and refused the run.
	ErrDraining = server.ErrDraining
	// ErrBusy: the server is at ServerConfig.MaxSessions and shed the
	// connection at handshake.
	ErrBusy = server.ErrBusy
	// ErrSessionClosed: the session's connection is gone (and, under a
	// retry policy, the attempt budget is spent).
	ErrSessionClosed = server.ErrSessionClosed
	// ErrMalformedFrame: wire input that is structurally invalid —
	// oversized length fields, unknown status or ack bytes — corruption
	// or a peer that does not speak the protocol.
	ErrMalformedFrame = server.ErrMalformedFrame
	// ErrIntegrity: a checksummed frame failed verification — the bytes
	// were damaged in transit. Retryable; under RunOptions.Retry the
	// session heals by reconnecting and resuming the broken transfer.
	ErrIntegrity = proto.ErrIntegrity
	// ErrOverBudget: the session or run was refused by a resource
	// budget (ServerConfig.MaxCircuitBytes / MaxRunBytes or the
	// client-side RunOptions.MaxRunBytes). Permanent — retrying the
	// same circuit against the same budget cannot succeed.
	ErrOverBudget = server.ErrOverBudget
	// ErrInternal: the server contained a panic in this session's
	// handler and refused it; other sessions are unaffected. Retryable.
	ErrInternal = server.ErrInternal
)

// NewServer builds a serving garbler from cfg; start it with
// Server.Serve on any net.Listener and stop it with Server.Close.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// Serve builds a server from cfg and starts serving ln on a background
// goroutine, returning the Server handle — the one-call form of
// NewServer + go Server.Serve for daemons with one listener. Keep the
// handle: Server.Close is the graceful, connection-draining shutdown
// and Server.Stats the counters; a listener that fails after startup
// surfaces as an ordinary Accept error once Close observes it.
func Serve(ln net.Listener, cfg ServerConfig) (*Server, error) {
	s, err := server.New(cfg)
	if err != nil {
		return nil, err
	}
	go s.Serve(ln)
	return s, nil
}

// Dial opens an evaluator session for circuitID against a serving
// garbler at addr. The caller's circuit must be structurally identical
// to the server's — its digest is verified during the handshake — and
// each Session.Run then executes one full garbled run.
func Dial(addr, circuitID string, c *Circuit) (*Session, error) {
	return DialWith(addr, circuitID, c, RunOptions{})
}

// DialWith is Dial with explicit engine options. RunOptions.Plan (from
// Precompile on the same circuit) gives the session a persistent
// evaluation runner with zero steady-state allocations per run; share
// one Precompiled across every session of a circuit. RunOptions.Retry
// makes the session self-healing: Session.Run then redials,
// re-handshakes and replays runs broken by transport faults, and
// Session.Stats counts the repair work.
func DialWith(addr, circuitID string, c *Circuit, opts RunOptions) (*Session, error) {
	sopts := server.Options{
		OT:          ot.DH,
		Workers:     opts.Workers,
		Pipelined:   opts.Pipelined,
		Retry:       opts.Retry,
		TLS:         opts.TLS,
		Integrity:   opts.Integrity,
		MaxRunBytes: opts.MaxRunBytes,
		PoolSize:    opts.PoolSize,
		PoolRefill:  opts.PoolRefill,
	}
	if opts.Plan != nil {
		sopts.Plan = opts.Plan.plan
	}
	return server.Dial(addr, circuitID, c, sopts)
}

// Fleet types, re-exported from internal/fleet: the digest-sharded
// front proxy that scales the serving layer across several garbler
// processes.
type (
	// Fleet is the front proxy: it routes each session to a backend by
	// rendezvous-hashing the circuit digest (so repeat circuits land on
	// warm plan caches), health-checks backends actively (/readyz
	// probes) and passively (per-backend circuit breakers), fails
	// sessions over to the next live backend, and supports
	// Drain/Undrain rolling restarts. ServeOps/OpsHandler expose its
	// own /healthz, /readyz and /metrics.
	Fleet = fleet.Fleet
	// FleetConfig configures a Fleet: the backend set, probe cadence,
	// breaker thresholds, drain bound, and optional TLS on either hop.
	FleetConfig = fleet.Config
	// FleetBackend names one backend garbler: its 2PC session address
	// and optional HTTP ops address for active probing.
	FleetBackend = fleet.Backend
	// FleetStats snapshots the proxy's counters — routes, refusals,
	// failovers, ejections/readmissions, spliced bytes — plus
	// per-backend breakdowns.
	FleetStats = fleet.Stats
)

// NewFleet builds the front proxy from cfg; start it with Fleet.Serve
// on any net.Listener and stop it with Fleet.Close.
func NewFleet(cfg FleetConfig) (*Fleet, error) { return fleet.New(cfg) }

// DialFleet opens an evaluator session through a fleet proxy at addr.
// The proxy speaks the exact server handshake, so this is Dial pointed
// at the fleet — a session with a retry policy (RunOptions.Retry via
// DialFleetWith) heals across backend failures: the redial lands on the
// proxy, which routes it to the next live backend.
func DialFleet(addr, circuitID string, c *Circuit) (*Session, error) {
	return DialWith(addr, circuitID, c, RunOptions{})
}

// DialFleetWith is DialFleet with explicit engine options; see DialWith.
func DialFleetWith(addr, circuitID string, c *Circuit, opts RunOptions) (*Session, error) {
	return DialWith(addr, circuitID, c, opts)
}

// CircuitDigest returns the canonical SHA-256 identity of a circuit —
// the value the serving handshake checks.
func CircuitDigest(c *Circuit) [32]byte { return circuit.Digest(c) }

// VIPSuite returns the paper's eight VIP-Bench workloads at evaluation
// scale; VIPSuiteSmall returns fast reduced-size variants.
func VIPSuite() []Workload { return workloads.VIPSuite() }

// VIPSuiteSmall returns reduced-size variants of the VIP workloads.
func VIPSuiteSmall() []Workload { return workloads.VIPSuiteSmall() }
