package haac

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"haac/internal/circuit"
)

// Facade-level integration tests: exercise the public API exactly as the
// README and examples present it.

func TestFacadeBuildEvalGarble2PC(t *testing.T) {
	b := NewBuilder()
	x := b.GarblerInputs(16)
	y := b.EvaluatorInputs(16)
	b.OutputWord(b.Add(x, y))
	b.Output(b.GtU(x, y))
	c := b.MustBuild()

	g := bits(40000, 16)
	e := bits(30000, 16)

	plain, err := Eval(c, g, e)
	if err != nil {
		t.Fatal(err)
	}
	garbled, err := GarbleAndEvaluate(c, g, e, 99)
	if err != nil {
		t.Fatal(err)
	}
	secure, err := Run2PC(c, g, e)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if garbled[i] != plain[i] {
			t.Fatalf("garbled bit %d != plaintext", i)
		}
		if secure[i] != plain[i] {
			t.Fatalf("2PC bit %d != plaintext", i)
		}
	}
	// 40000 + 30000 = 70000 mod 2^16 = 4464; 40000 > 30000.
	if v := val(plain[:16]); v != 4464 {
		t.Fatalf("sum = %d", v)
	}
	if !plain[16] {
		t.Fatal("comparison wrong")
	}
}

// TestFacadeParallelPipelined drives the parallel engine and the
// pipelined 2PC path through the public API.
func TestFacadeParallelPipelined(t *testing.T) {
	b := NewBuilder()
	x := b.GarblerInputs(16)
	y := b.EvaluatorInputs(16)
	b.OutputWord(b.Mul(x, y))
	c := b.MustBuild()

	g := bits(321, 16)
	e := bits(123, 16)
	plain, err := Eval(c, g, e)
	if err != nil {
		t.Fatal(err)
	}

	par, err := GarbleAndEvaluateWith(c, g, e, 99, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := Run2PCWith(c, g, e, RunOptions{Workers: 4, Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if par[i] != plain[i] {
			t.Fatalf("parallel bit %d != plaintext", i)
		}
		if pipe[i] != plain[i] {
			t.Fatalf("pipelined 2PC bit %d != plaintext", i)
		}
	}
	// 321 * 123 = 39483.
	if v := val(plain); v != 39483 {
		t.Fatalf("product = %d", v)
	}
}

// TestFacadePrecompile exercises the compiled-plan facade: one
// Precompile handle shared across every plan-aware entry point, built
// exactly once no matter how many runs reuse it.
func TestFacadePrecompile(t *testing.T) {
	b := NewBuilder()
	x := b.GarblerInputs(16)
	y := b.EvaluatorInputs(16)
	b.OutputWord(b.Mul(x, y))
	c := b.MustBuild()

	g := bits(321, 16)
	e := bits(123, 16)
	plain, err := Eval(c, g, e)
	if err != nil {
		t.Fatal(err)
	}

	builds := circuit.PlanBuilds()
	p, err := Precompile(c)
	if err != nil {
		t.Fatal(err)
	}
	if p.Circuit() != c {
		t.Fatal("Precompile lost the circuit")
	}
	if p.NumSlots() >= c.NumWires || p.NumSlots() != p.PeakLive() {
		t.Fatalf("renaming stats wrong: %d slots, %d peak-live, %d wires",
			p.NumSlots(), p.PeakLive(), c.NumWires)
	}

	check := func(name string, out []bool, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range plain {
			if out[i] != plain[i] {
				t.Fatalf("%s: bit %d != plaintext", name, i)
			}
		}
	}
	for run := 0; run < 3; run++ {
		out, err := Run2PCWith(c, g, e, RunOptions{Plan: p})
		check("planned 2PC", out, err)
	}
	out, err := Run2PCWith(c, g, e, RunOptions{Plan: p, Workers: 4, Pipelined: true})
	check("planned pipelined 2PC", out, err)
	out, err = GarbleAndEvaluateWith(c, g, e, 99, RunOptions{Plan: p, Workers: 2})
	check("planned local garble", out, err)

	if got := circuit.PlanBuilds() - builds; got != 1 {
		t.Fatalf("plan built %d times across all planned runs, want exactly 1", got)
	}

	// A plan from another circuit is rejected, not silently misused.
	other := MustBuildAdd(t)
	if _, err := Run2PCWith(other, bits(1, 8), bits(2, 8), RunOptions{Plan: p}); err == nil {
		t.Fatal("foreign plan accepted")
	}
}

// MustBuildAdd builds a small unrelated circuit for mismatch tests.
func MustBuildAdd(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder()
	x := b.GarblerInputs(8)
	y := b.EvaluatorInputs(8)
	b.OutputWord(b.Add(x, y))
	return b.MustBuild()
}

func TestFacadeCompileSimulate(t *testing.T) {
	b := NewBuilder()
	x := b.GarblerInputs(32)
	y := b.EvaluatorInputs(32)
	b.OutputWord(b.Mul(x, y))
	c := b.MustBuild()

	cfg := DefaultCompilerConfig()
	cfg.NumGEs = 4
	cfg.SWWWires = 1024
	cp, err := Compile(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hw := DefaultHW()
	hw.NumGEs = 4
	hw.SWWWires = 1024
	res, err := Simulate(cp, hw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time() <= 0 {
		t.Fatal("no simulated time")
	}
	if EnergyOf(res).Total() <= 0 {
		t.Fatal("no energy")
	}
	if AreaOf(hw) <= 0 || AreaOf(hw) >= AreaOf(DefaultHW()) {
		t.Fatal("area scaling wrong")
	}

	// The HBM2 preset must never make things slower.
	hw2 := hw
	hw2.DRAM = HBM2
	res2, err := Simulate(cp, hw2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.TotalCycles > res.TotalCycles {
		t.Fatal("HBM2 slower than DDR4")
	}
}

func TestFacadeSuites(t *testing.T) {
	if len(VIPSuite()) != 8 || len(VIPSuiteSmall()) != 8 {
		t.Fatal("VIP suites must have 8 workloads")
	}
	names := map[string]bool{}
	for _, w := range VIPSuiteSmall() {
		names[w.Name] = true
	}
	for _, want := range []string{"BubbSt", "DotProd", "Merse", "Triangle", "Hamm", "MatMult", "ReLU", "GradDesc"} {
		if !names[want] {
			t.Fatalf("missing workload %s", want)
		}
	}
}

func TestFacadeReorderModes(t *testing.T) {
	b := NewBuilder()
	x := b.GarblerInputs(8)
	y := b.EvaluatorInputs(8)
	b.OutputWord(b.Mul(x, y))
	c := b.MustBuild()
	for _, mode := range []ReorderMode{Baseline, SegmentReorder, FullReorder} {
		cfg := DefaultCompilerConfig()
		cfg.Reorder = mode
		cfg.NumGEs = 2
		cfg.SWWWires = 64
		cp, err := Compile(c.Clone(), cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		in, err := cp.InputBits(c, bits(200, 8), bits(3, 8))
		if err != nil {
			t.Fatal(err)
		}
		out, err := cp.Execute(in)
		if err != nil {
			t.Fatal(err)
		}
		if val(out) != (200*3)&0xff {
			t.Fatalf("%v: wrong product %d", mode, val(out))
		}
	}
}

// TestFacadeServing drives the serving layer through the public API
// exactly as the README presents it: NewServer + Serve on a loopback
// listener, Dial/DialWith sessions (one sharing a Precompiled plan),
// repeated Session.Run calls checked against Eval, typed refusals, and
// graceful Close.
func TestFacadeServing(t *testing.T) {
	b := NewBuilder()
	x := b.GarblerInputs(16)
	y := b.EvaluatorInputs(16)
	b.OutputWord(b.Add(x, y))
	c := b.MustBuild()
	g := bits(40000, 16)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(ln, ServerConfig{
		Circuits: []ServedCircuit{{
			ID:      "add16",
			Circuit: c,
			Inputs:  func() []bool { return g },
		}},
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pre, err := Precompile(c)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Eval(c, g, bits(30000, 16))
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range map[string]RunOptions{
		"dense":   {},
		"planned": {Plan: pre},
	} {
		sess, err := DialWith(ln.Addr().String(), "add16", c, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for run := 0; run < 2; run++ {
			out, err := sess.Run(bits(30000, 16))
			if err != nil {
				t.Fatalf("%s run %d: %v", name, run, err)
			}
			for i := range plain {
				if out[i] != plain[i] {
					t.Fatalf("%s run %d: bit %d differs from Eval", name, run, i)
				}
			}
		}
		if err := sess.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
	}

	if _, err := Dial(ln.Addr().String(), "nope", c); !errors.Is(err, ErrUnknownCircuit) {
		t.Fatalf("unknown circuit: got %v", err)
	}
	if d := CircuitDigest(c); d == [32]byte{} {
		t.Fatal("zero digest")
	}
	st := srv.Stats()
	if st.RunsServed != 4 || st.CacheMisses != 1 {
		t.Fatalf("stats = %+v, want 4 runs / 1 miss", st)
	}
}

// TestFacadeSelfHealingSession: a session dialed with a retry policy
// survives its server being closed and replaced on the same address —
// Session.Run redials, re-handshakes and replays transparently, and the
// repair is visible in ClientStats and its Prometheus rendering.
func TestFacadeSelfHealingSession(t *testing.T) {
	b := NewBuilder()
	x := b.GarblerInputs(16)
	y := b.EvaluatorInputs(16)
	b.OutputWord(b.Add(x, y))
	c := b.MustBuild()
	g := bits(1234, 16)

	cfg := ServerConfig{
		Circuits: []ServedCircuit{{
			ID:      "add16",
			Circuit: c,
			Inputs:  func() []bool { return g },
		}},
		Seed: 8,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv, err := Serve(ln, cfg)
	if err != nil {
		t.Fatal(err)
	}

	retry := RetryPolicy{MaxAttempts: 40, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 50 * time.Millisecond, Seed: 3}
	sess, err := DialWith(addr, "add16", c, RunOptions{Retry: retry})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	plain, err := Eval(c, g, bits(4321, 16))
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		out, err := sess.Run(bits(4321, 16))
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		for i := range plain {
			if out[i] != plain[i] {
				t.Fatalf("%s: bit %d differs from Eval", stage, i)
			}
		}
	}
	check("before restart")

	// Replace the server: the old one drains (severing the idle
	// session), a fresh one binds the same address.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := Serve(ln2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	check("after restart")
	st := sess.Stats()
	if st.Reconnects < 1 {
		t.Fatalf("stats = %+v, want at least one reconnect across the restart", st)
	}
	if st.Runs != 2 {
		t.Fatalf("runs completed = %d, want 2", st.Runs)
	}
	metrics := st.MetricsText()
	for _, want := range []string{"haac_client_runs_total 2", "haac_client_reconnects_total"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("MetricsText missing %q:\n%s", want, metrics)
		}
	}

	// Permanent handshake refusals are not retried, even under a policy.
	start := time.Now()
	if _, err := DialWith(addr, "nope", c, RunOptions{Retry: retry}); !errors.Is(err, ErrUnknownCircuit) {
		t.Fatalf("unknown circuit under retry: got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("permanent refusal burned the retry budget (%v)", elapsed)
	}
}

func bits(v uint64, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = v>>uint(i)&1 == 1
	}
	return out
}

func val(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}
