// Root benchmark harness: one Go benchmark per table and figure of the
// paper's evaluation (§6). Each benchmark regenerates its artifact via
// internal/bench and reports headline metrics; the formatted tables are
// printed with -v.
//
// By default benchmarks run at the reduced ("small") workload scale so
// `go test -bench=.` completes quickly. Set HAAC_BENCH_SCALE=paper to
// run the §5 evaluation sizes (cmd/haacbench does this by default).
package haac

import (
	"os"
	"testing"

	"haac/internal/bench"
)

func benchEnv(b *testing.B) *bench.Env {
	b.Helper()
	scale := bench.Small
	if s := os.Getenv("HAAC_BENCH_SCALE"); s != "" {
		var err error
		scale, err = bench.ParseScale(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	return bench.NewEnv(scale)
}

func BenchmarkTable1PPCComparison(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = bench.Table1()
	}
	b.Log("\n" + s)
}

func BenchmarkTable2Characteristics(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		rows, s, err := e.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
			var gates float64
			for _, r := range rows {
				gates += r.GatesK
			}
			b.ReportMetric(gates, "kgates-total")
		}
	}
}

func BenchmarkTable3WireTraffic(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		_, s, err := e.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
		}
	}
}

func BenchmarkTable4AreaPower(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		s, err := e.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
		}
	}
}

func BenchmarkTable5PriorWork(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		rows, s, err := e.Table5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
			wins := 0
			for _, r := range rows {
				if r.Speedup > 1 {
					wins++
				}
			}
			b.ReportMetric(float64(wins)/float64(len(rows)), "win-fraction")
		}
	}
}

func BenchmarkFig6CompilerSpeedups(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		rows, s, err := e.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
			gain := 0.0
			for _, r := range rows {
				gain += r.ESW / r.Baseline
			}
			b.ReportMetric(gain/float64(len(rows)), "avg-opt-gain-x")
		}
	}
}

func BenchmarkFig7OrderingSWWSweep(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		_, s, err := e.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
		}
	}
}

func BenchmarkFig8GEScaling(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		rows, s, err := e.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
			var scale float64
			for _, r := range rows {
				scale += r.HBM2[len(r.HBM2)-1] / r.HBM2[0]
			}
			b.ReportMetric(scale/float64(len(rows)), "avg-1to16-scaling-x")
		}
	}
}

func BenchmarkFig9Energy(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		rows, s, err := e.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
			var eff float64
			for _, r := range rows {
				eff += r.EfficiencyKx
			}
			b.ReportMetric(eff/float64(len(rows)), "avg-efficiency-Kx")
		}
	}
}

func BenchmarkFig10PlaintextSlowdown(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		_, s, err := e.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
		}
	}
}

func BenchmarkGarblerVsEvaluator(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		ratio, s, err := e.GarblerVsEvaluator()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
			b.ReportMetric(ratio, "garbler/evaluator")
		}
	}
}

func BenchmarkRekeyingOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		over, s := bench.RekeyingOverhead()
		if i == 0 {
			b.Log("\n" + s)
			b.ReportMetric(over, "rekey-overhead-%")
		}
	}
}
