// Root benchmark harness: one Go benchmark per table and figure of the
// paper's evaluation (§6). Each benchmark regenerates its artifact via
// internal/bench and reports headline metrics; the formatted tables are
// printed with -v.
//
// By default benchmarks run at the reduced ("small") workload scale so
// `go test -bench=.` completes quickly. Set HAAC_BENCH_SCALE=paper to
// run the §5 evaluation sizes (cmd/haacbench does this by default).
package haac

import (
	"fmt"
	"net"
	"os"
	"testing"

	"haac/internal/bench"
	"haac/internal/circuit"
	"haac/internal/gc"
	"haac/internal/label"
	"haac/internal/ot"
	"haac/internal/proto"
	"haac/internal/workloads"
)

func benchEnv(b *testing.B) *bench.Env {
	b.Helper()
	scale := bench.Small
	if s := os.Getenv("HAAC_BENCH_SCALE"); s != "" {
		var err error
		scale, err = bench.ParseScale(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	return bench.NewEnv(scale)
}

func BenchmarkTable1PPCComparison(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = bench.Table1()
	}
	b.Log("\n" + s)
}

func BenchmarkTable2Characteristics(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		rows, s, err := e.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
			var gates float64
			for _, r := range rows {
				gates += r.GatesK
			}
			b.ReportMetric(gates, "kgates-total")
		}
	}
}

func BenchmarkTable3WireTraffic(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		_, s, err := e.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
		}
	}
}

func BenchmarkTable4AreaPower(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		s, err := e.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
		}
	}
}

func BenchmarkTable5PriorWork(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		rows, s, err := e.Table5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
			wins := 0
			for _, r := range rows {
				if r.Speedup > 1 {
					wins++
				}
			}
			b.ReportMetric(float64(wins)/float64(len(rows)), "win-fraction")
		}
	}
}

func BenchmarkFig6CompilerSpeedups(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		rows, s, err := e.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
			gain := 0.0
			for _, r := range rows {
				gain += r.ESW / r.Baseline
			}
			b.ReportMetric(gain/float64(len(rows)), "avg-opt-gain-x")
		}
	}
}

func BenchmarkFig7OrderingSWWSweep(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		_, s, err := e.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
		}
	}
}

func BenchmarkFig8GEScaling(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		rows, s, err := e.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
			var scale float64
			for _, r := range rows {
				scale += r.HBM2[len(r.HBM2)-1] / r.HBM2[0]
			}
			b.ReportMetric(scale/float64(len(rows)), "avg-1to16-scaling-x")
		}
	}
}

func BenchmarkFig9Energy(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		rows, s, err := e.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
			var eff float64
			for _, r := range rows {
				eff += r.EfficiencyKx
			}
			b.ReportMetric(eff/float64(len(rows)), "avg-efficiency-Kx")
		}
	}
}

func BenchmarkFig10PlaintextSlowdown(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		_, s, err := e.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
		}
	}
}

func BenchmarkGarblerVsEvaluator(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		ratio, s, err := e.GarblerVsEvaluator()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
			b.ReportMetric(ratio, "garbler/evaluator")
		}
	}
}

// BenchmarkRekeyingOverhead regenerates the "rekey" experiment: the
// re-keyed vs fixed-key garbling cost on matched software AES backends
// (the paper-comparable number) and vs crypto/aes. The per-gate
// hashing benchmarks behind it live in internal/gc
// (BenchmarkRekeyedHash4, BenchmarkRekeyedGarble, ...) and report B/op
// and allocs/op directly.
func BenchmarkRekeyingOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, over, s := bench.RekeyingOverhead()
		if i == 0 {
			b.Log("\n" + s)
			b.ReportMetric(over, "rekey-overhead-%")
			for _, r := range rows {
				if r.Hasher == "rekeyed" {
					b.ReportMetric(r.AllocsPerHash4, "allocs/hash4")
				}
			}
		}
	}
}

// benchParallelCircuit is the large, wide circuit the sequential-vs-
// parallel garbling benchmarks share (ILP ~267, ~96 ANDs per level).
func benchParallelCircuit(b *testing.B) *Circuit {
	b.Helper()
	return workloads.MatMult(3, 16).Build()
}

// BenchmarkGarble compares the sequential garbler against the parallel
// level-scheduled engine at several pool widths on the same circuit.
// On a multi-core host the x8 variant is expected to run >= 2x faster
// than sequential; on a single-core host they converge (the engine adds
// only a few percent of scheduling overhead).
func BenchmarkGarble(b *testing.B) {
	c := benchParallelCircuit(b)
	h := gc.RekeyedHasher{}
	and, _, _ := c.CountOps()

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gc.Garble(c, h, label.NewSource(7)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(and)*float64(b.N)/b.Elapsed().Seconds()/1e6, "MAND/s")
	})
	for _, workers := range []int{2, 4, 8} {
		workers := workers
		b.Run(benchName("parallel", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := gc.ParallelGarble(c, h, label.NewSource(7), workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(and)*float64(b.N)/b.Elapsed().Seconds()/1e6, "MAND/s")
		})
	}
}

// BenchmarkParallelEval is the evaluator-side counterpart.
func BenchmarkParallelEval(b *testing.B) {
	c := benchParallelCircuit(b)
	h := gc.RekeyedHasher{}
	w := workloads.MatMult(3, 16)
	g, e := w.Inputs(5)
	garbled, err := gc.Garble(c, h, label.NewSource(7))
	if err != nil {
		b.Fatal(err)
	}
	in, err := garbled.EncodeInputs(c, g, e)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		workers := workers
		b.Run(benchName("workers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := gc.ParallelEval(c, h, in, garbled.Tables, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Benchmark2PCPipelined compares full two-party runs: sequential
// streaming vs the pipelined parallel engine on both sides.
func Benchmark2PCPipelined(b *testing.B) {
	c := benchParallelCircuit(b)
	w := workloads.MatMult(3, 16)
	g, e := w.Inputs(5)
	modes := []struct {
		name string
		opts RunOptions
	}{
		{"sequential", RunOptions{}},
		{"pipelined-x8", RunOptions{Workers: 8, Pipelined: true}},
	}
	for _, m := range modes {
		m := m
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run2PCWith(c, g, e, m.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelGarblingTable regenerates the sequential-vs-parallel
// throughput table (cmd/haacbench experiment "parallel").
func BenchmarkParallelGarblingTable(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		rows, s, err := e.ParallelGarbling()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
			var best float64
			for _, r := range rows {
				if sp := r.Speedup(8); sp > best {
					best = sp
				}
			}
			b.ReportMetric(best, "best-x8-speedup")
		}
	}
}

func benchName(prefix string, workers int) string {
	return fmt.Sprintf("%s-x%d", prefix, workers)
}

// BenchmarkGarblePlan compares dense garbling against a reused
// precompiled plan on the same circuit. ReportAllocs makes the headline
// property visible: the planned steady state is 0 allocs/op while the
// dense path re-allocates its wire arrays every run.
func BenchmarkGarblePlan(b *testing.B) {
	c := benchParallelCircuit(b)
	h := gc.RekeyedHasher{}
	and, _, _ := c.CountOps()
	p, err := circuit.NewPlan(c)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := gc.Garble(c, h, label.NewSource(7)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(and)*float64(b.N)/b.Elapsed().Seconds()/1e6, "MAND/s")
	})
	b.Run("planned", func(b *testing.B) {
		pg := gc.NewPlanGarbler(p, h, 1)
		src := label.NewSource(7)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pg.Begin(src)
			if _, err := pg.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(and)*float64(b.N)/b.Elapsed().Seconds()/1e6, "MAND/s")
	})
}

// BenchmarkEvalPlan is the evaluator-side counterpart.
func BenchmarkEvalPlan(b *testing.B) {
	w := workloads.MatMult(3, 16)
	c := w.Build()
	h := gc.RekeyedHasher{}
	g, e := w.Inputs(5)
	p, err := circuit.NewPlan(c)
	if err != nil {
		b.Fatal(err)
	}
	garbled, err := gc.Garble(c, h, label.NewSource(7))
	if err != nil {
		b.Fatal(err)
	}
	in, err := garbled.EncodeInputs(c, g, e)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := gc.Evaluate(c, h, in, garbled.Tables); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("planned", func(b *testing.B) {
		pe := gc.NewPlanEvaluator(p, h, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pe.Eval(in, garbled.Tables); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPrecompile prices the one-time plan construction that the
// planned runs above amortize: liveness + renaming + schedule, O(gates).
func BenchmarkPrecompile(b *testing.B) {
	c := benchParallelCircuit(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Precompile(c); err != nil {
			b.Fatal(err)
		}
	}
}

// Benchmark2PCPlanned compares full two-party runs with and without a
// shared precompiled plan.
func Benchmark2PCPlanned(b *testing.B) {
	w := workloads.MatMult(3, 16)
	c := w.Build()
	g, e := w.Inputs(5)
	p, err := Precompile(c)
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name string
		opts RunOptions
	}{
		{"dense", RunOptions{}},
		{"planned", RunOptions{Plan: p}},
		{"planned-pipelined-x8", RunOptions{Plan: p, Workers: 8, Pipelined: true}},
	}
	for _, m := range modes {
		m := m
		b.Run(m.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run2PCWith(c, g, e, m.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMemoryTable regenerates the dense-vs-planned memory table
// (cmd/haacbench experiment "memory").
func BenchmarkMemoryTable(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		rows, s, err := e.Memory()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
			worst := 0.0
			for _, r := range rows {
				if f := r.LiveFraction(); f > worst {
					worst = f
				}
			}
			b.ReportMetric(worst, "worst-live-fraction")
		}
	}
}

// BenchmarkOTExtension: one op is a full IKNP extension of m transfers,
// 128 DH base OTs included, both parties over an in-memory pipe. B/op
// and allocs/op come from ReportAllocs: allocations are O(1) per 16384-
// transfer chunk, so allocs/op stays flat while m (and OT/s) grows.
func BenchmarkOTExtension(b *testing.B) {
	for _, m := range []int{1024, 16384, 65536} {
		m := m
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			src := label.NewSource(uint64(m))
			pairs := make([]ot.Pair, m)
			choices := ot.NewBitset(m)
			for i := range pairs {
				pairs[i] = ot.Pair{M0: src.Next(), M1: src.Next()}
				choices.Set(i, i%3 == 0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ga, ev := net.Pipe()
				errc := make(chan error, 1)
				go func() { errc <- ot.Send(ga, ot.IKNP, pairs) }()
				if _, err := ot.ReceiveBitset(ev, ot.IKNP, choices); err != nil {
					b.Fatal(err)
				}
				if err := <-errc; err != nil {
					b.Fatal(err)
				}
				ga.Close()
				ev.Close()
			}
			b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds(), "OT/s")
		})
	}
}

// Benchmark2PCTransport isolates the slab transport: full two-party runs
// under the allocation-free fixed-key hasher and free OT, so allocs/op
// tracks the table/label stream rather than hashing or key exchange.
func Benchmark2PCTransport(b *testing.B) {
	w := workloads.DotProduct(8, 16)
	c := w.Build()
	and, _, _ := c.CountOps()
	g, e := w.Inputs(5)
	h := gc.NewFixedKeyHasher([16]byte{42})
	modes := []struct {
		name string
		opts proto.Options
	}{
		{"sequential", proto.Options{OT: ot.Insecure, Seed: 7, Hasher: h}},
		{"pipelined-x4", proto.Options{OT: ot.Insecure, Seed: 7, Hasher: h, Pipelined: true, Workers: 4}},
	}
	for _, m := range modes {
		m := m
		b.Run(m.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ga, ev := net.Pipe()
				errc := make(chan error, 1)
				go func() {
					_, err := proto.RunGarbler(ga, c, g, m.opts)
					errc <- err
				}()
				if _, err := proto.RunEvaluator(ev, c, e, m.opts); err != nil {
					b.Fatal(err)
				}
				if err := <-errc; err != nil {
					b.Fatal(err)
				}
				ga.Close()
				ev.Close()
			}
			b.ReportMetric(float64(and)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mtables/s")
		})
	}
}

// BenchmarkOTExtensionTable regenerates the OT-extension experiment
// (cmd/haacbench experiment "ot").
func BenchmarkOTExtensionTable(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		rows, s, err := e.OTExtension()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
			last := rows[len(rows)-1]
			b.ReportMetric(last.AllocsPerOT, "allocs/OT-largest")
		}
	}
}

// BenchmarkTransportTable regenerates the 2PC transport experiment
// (cmd/haacbench experiment "transport").
func BenchmarkTransportTable(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		rows, s, err := e.Transport()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
			b.ReportMetric(rows[0].AllocsPerTable, "allocs/table-seq")
		}
	}
}

// BenchmarkServingTable regenerates the concurrent serving experiment
// (cmd/haacbench experiment "serving"): sessions share one plan build
// and pooled runners at 1, 4 and 16 concurrent evaluators.
func BenchmarkServingTable(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		rows, s, err := e.Serving()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
			last := rows[len(rows)-1]
			b.ReportMetric(last.RunsPerSec, "runs/s-16sess")
			b.ReportMetric(last.AllocsPerRun, "allocs/run-16sess")
		}
	}
}
