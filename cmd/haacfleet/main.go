// Command haacfleet is the digest-sharded front proxy daemon: one
// process fronting a fleet of haacd backends. Evaluators dial the proxy
// exactly as they would a single haacd (haac.Dial / haac-run -role
// client); the proxy routes each session to a backend by
// rendezvous-hashing the circuit digest — repeat sessions of a circuit
// land on the backend whose plan cache is already warm — and splices
// bytes for the life of the session.
//
// Example — front two local backends, probing their ops endpoints, with
// the proxy's own ops sidecar on :9091:
//
//	haacfleet -listen :9200 -ops :9091 \
//	    -backends 127.0.0.1:9100=127.0.0.1:9090,127.0.0.1:9101=127.0.0.1:9092
//
// Each -backends element is addr or addr=opsaddr; with an ops address
// the proxy actively probes GET /readyz (falling back to /healthz) every
// -probe-interval so saturated, draining or dead backends stop
// receiving routes. Independently, a passive circuit breaker ejects a
// backend after -fail-threshold consecutive dial or handshake failures
// and readmits it via half-open trials or a succeeding probe. The
// proxy's -ops listener serves /healthz, /readyz (503 until at least
// one backend is routable) and Prometheus /metrics with per-backend
// series.
//
// Rolling restarts of individual backends go through the fleet API
// (haac.NewFleet + Fleet.Drain/Undrain); the daemon covers the
// static-fleet case. SIGINT/SIGTERM drain the proxy itself: listeners stop accepting,
// active splices get -drain-timeout to finish, stragglers are
// force-closed, then the daemon reports its routing totals and exits.
package main

import (
	"crypto/tls"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"haac/internal/fleet"
)

func main() {
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		close(stop)
	}()
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, stop))
}

// run is the testable entry point: it parses args, proxies until stop
// closes (or a listener fails), and returns the process exit status.
func run(args []string, stdout, stderr io.Writer, stop <-chan struct{}) int {
	fs := flag.NewFlagSet("haacfleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "127.0.0.1:9200", "listen address for client sessions")
	ops := fs.String("ops", "", "operations HTTP address serving /healthz, /readyz and /metrics (empty = disabled)")
	backends := fs.String("backends", "", "comma-separated backend list, each addr or addr=opsaddr (ops address enables active probing)")
	probeInterval := fs.Duration("probe-interval", 0, "active health-probe period (0 = 500ms default, negative = disabled)")
	probeTimeout := fs.Duration("probe-timeout", 0, "per-probe HTTP timeout (0 = 2s default)")
	failThreshold := fs.Int("fail-threshold", 0, "consecutive backend failures before circuit-breaker ejection (0 = 3 default)")
	reopenAfter := fs.Duration("reopen-after", 0, "ejection period before half-open trials (0 = 1s default)")
	dialTimeout := fs.Duration("dial-timeout", 0, "per-backend dial timeout (0 = 5s default)")
	idleTimeout := fs.Duration("idle-timeout", 0, "per-direction splice idle deadline; a session moving no bytes past it is torn down (0 = none)")
	drainTimeout := fs.Duration("drain-timeout", 0, "shutdown grace for active sessions before force-close (0 = 30s default)")
	tlsCert := fs.String("tls-cert", "", "PEM certificate for TLS on the client listener (requires -tls-key; empty = plaintext)")
	tlsKey := fs.String("tls-key", "", "PEM private key for TLS on the client listener (requires -tls-cert)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	specs, err := parseBackends(*backends)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	tlsCfg, err := tlsFor(*tlsCert, *tlsKey)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	f, err := fleet.New(fleet.Config{
		Backends:      specs,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		FailThreshold: *failThreshold,
		ReopenAfter:   *reopenAfter,
		DialTimeout:   *dialTimeout,
		IdleTimeout:   *idleTimeout,
		DrainTimeout:  *drainTimeout,
		TLS:           tlsCfg,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	var opsLn net.Listener
	if *ops != "" {
		opsLn, err = net.Listen("tcp", *ops)
		if err != nil {
			ln.Close()
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	proto := "plaintext"
	if tlsCfg != nil {
		proto = "TLS"
	}
	fmt.Fprintf(stdout, "haacfleet: fronting %d backends on %s (%s)\n", len(specs), ln.Addr(), proto)
	if opsLn != nil {
		fmt.Fprintf(stdout, "haacfleet: ops endpoints on http://%s (/healthz, /readyz, /metrics)\n", opsLn.Addr())
	}
	for _, b := range specs {
		probe := "unprobed"
		if b.Ops != "" {
			probe = "probing http://" + b.Ops
		}
		fmt.Fprintf(stdout, "  %-24s %s\n", b.Addr, probe)
	}

	errc := make(chan error, 1)
	go func() { errc <- f.Serve(ln) }()
	// A nil channel never delivers, so the select below ignores the
	// sidecar when -ops is unset.
	var opsErrc chan error
	if opsLn != nil {
		opsErrc = make(chan error, 1)
		go func() { opsErrc <- f.ServeOps(opsLn) }()
	}
	select {
	case err := <-errc:
		// Serve only returns on its own when the listener breaks.
		f.Close()
		fmt.Fprintln(stderr, err)
		return 1
	case err := <-opsErrc:
		// ServeOps only returns on its own when the ops listener breaks.
		f.Close()
		fmt.Fprintln(stderr, err)
		return 1
	case <-stop:
		fmt.Fprintln(stdout, "haacfleet: draining sessions")
		f.Close()
		<-errc
		st := f.Stats()
		fmt.Fprintf(stdout, "haacfleet: routed %d sessions (%d refused, %d failovers, %d dial failures, %d ejections, %d force-closed)\n",
			st.SessionsRouted, st.SessionsRefused, st.Failovers, st.DialFailures, st.Ejections, st.SessionsForceClosed)
		return 0
	}
}

// parseBackends resolves the -backends list: comma-separated elements,
// each addr or addr=opsaddr.
func parseBackends(list string) ([]fleet.Backend, error) {
	var specs []fleet.Backend
	for _, elem := range strings.Split(list, ",") {
		elem = strings.TrimSpace(elem)
		if elem == "" {
			continue
		}
		addr, opsAddr, hasOps := strings.Cut(elem, "=")
		addr, opsAddr = strings.TrimSpace(addr), strings.TrimSpace(opsAddr)
		if addr == "" || (hasOps && opsAddr == "") {
			return nil, fmt.Errorf("malformed -backends element %q (want addr or addr=opsaddr)", elem)
		}
		specs = append(specs, fleet.Backend{Addr: addr, Ops: opsAddr})
	}
	if len(specs) == 0 {
		return nil, errors.New("no backends configured; set -backends addr[,addr=opsaddr...]")
	}
	return specs, nil
}

// tlsFor loads the listener TLS configuration from a PEM pair; both
// flags empty keeps the plaintext default.
func tlsFor(certFile, keyFile string) (*tls.Config, error) {
	if certFile == "" && keyFile == "" {
		return nil, nil
	}
	if certFile == "" || keyFile == "" {
		return nil, errors.New("-tls-cert and -tls-key must be set together")
	}
	cert, err := tls.LoadX509KeyPair(certFile, keyFile)
	if err != nil {
		return nil, fmt.Errorf("loading TLS key pair: %w", err)
	}
	return &tls.Config{Certificates: []tls.Certificate{cert}}, nil
}
