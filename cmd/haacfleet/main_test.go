package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"haac/internal/ot"
	"haac/internal/server"
	"haac/internal/workloads"
)

// tsBuffer is a mutex-guarded buffer: the daemon goroutine writes while
// the test polls its contents.
type tsBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *tsBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *tsBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startBackend launches one garbler serving Million-8 with its ops
// sidecar, returning the session and ops addresses.
func startBackend(t *testing.T, seed uint64) (sessionAddr, opsAddr string) {
	t.Helper()
	var w workloads.Workload
	for _, cand := range append(workloads.VIPSuiteSmall(), workloads.MicroSuite()...) {
		if cand.Name == "Million-8" {
			w = cand
		}
	}
	c := w.Build()
	garblerBits := make([]bool, c.GarblerInputs)
	garblerBits[3] = true // 8
	srv, err := server.New(server.Config{
		Circuits: []server.CircuitSpec{{
			ID:      "Million-8",
			Circuit: c,
			Inputs:  func() []bool { return garblerBits },
		}},
		Seed:            seed,
		AllowInsecureOT: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	opsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	go srv.ServeOps(opsLn)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), opsLn.Addr().String()
}

var fleetAddrRe = regexp.MustCompile(`fronting \d+ backends on (\S+)`)
var fleetOpsRe = regexp.MustCompile(`ops endpoints on http://(\S+)`)

// startFleetDaemon runs the proxy's run() on an ephemeral port and
// waits for its banner.
func startFleetDaemon(t *testing.T, args []string) (string, *tsBuffer, func(), <-chan int) {
	t.Helper()
	stdout, stderrw := &tsBuffer{}, &tsBuffer{}
	stop := make(chan struct{})
	code := make(chan int, 1)
	go func() {
		code <- run(append([]string{"-listen", "127.0.0.1:0"}, args...), stdout, stderrw, stop)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := fleetAddrRe.FindStringSubmatch(stdout.String()); m != nil {
			var once sync.Once
			return m[1], stdout, func() { once.Do(func() { close(stop) }) }, code
		}
		select {
		case c := <-code:
			t.Fatalf("fleet daemon exited %d before serving:\n%s%s", c, stdout.String(), stderrw.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet daemon never printed its banner:\n%s%s", stdout.String(), stderrw.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFleetDaemonProxiesAndDrains: end-to-end through the proxy daemon
// — two probed backends, client sessions run byte-correct computations,
// the ops sidecar scrapes, SIGINT-style shutdown drains and reports
// routing totals.
func TestFleetDaemonProxiesAndDrains(t *testing.T) {
	addr1, ops1 := startBackend(t, 42)
	addr2, ops2 := startBackend(t, 43)
	addr, stdout, stop, code := startFleetDaemon(t, []string{
		"-backends", fmt.Sprintf("%s=%s,%s=%s", addr1, ops1, addr2, ops2),
		"-ops", "127.0.0.1:0",
		"-probe-interval", "10ms",
	})
	defer stop()

	m := fleetOpsRe.FindStringSubmatch(stdout.String())
	if m == nil {
		t.Fatalf("no ops banner:\n%s", stdout.String())
	}
	opsURL := "http://" + m[1]

	var w workloads.Workload
	for _, cand := range append(workloads.VIPSuiteSmall(), workloads.MicroSuite()...) {
		if cand.Name == "Million-8" {
			w = cand
		}
	}
	c := w.Build()
	sess, err := server.Dial(addr, "Million-8", c, server.Options{OT: ot.Insecure})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	evalBits := make([]bool, c.EvaluatorInputs)
	evalBits[0] = true // 1 < 8
	for i := 0; i < 3; i++ {
		out, err := sess.Run(evalBits)
		if err != nil {
			t.Fatalf("run %d through the proxy: %v", i, err)
		}
		if len(out) != 1 || !out[0] {
			t.Fatalf("run %d: 8 > 1 should be true, got %v", i, out)
		}
	}
	sess.Close()

	resp, err := http.Get(opsURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "haac_fleet_sessions_routed_total 1") {
		t.Errorf("proxy metrics missing the routed session:\n%s", body)
	}

	stop()
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("fleet daemon exit %d:\n%s", c, stdout.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("fleet daemon did not drain:\n%s", stdout.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "draining sessions") {
		t.Errorf("no drain banner:\n%s", out)
	}
	if !strings.Contains(out, "routed 1 sessions") {
		t.Errorf("routing totals missing or wrong:\n%s", out)
	}
}

// TestFleetDaemonBadArgs: usage errors exit 2 with a diagnostic.
func TestFleetDaemonBadArgs(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{},                       // no backends
		{"-backends", " , "},     // empty elements only
		{"-backends", "=ops:1"},  // missing addr
		{"-backends", "addr:1="}, // dangling ops
		{"-backends", "a:1", "-tls-cert", "x.pem"}, // half a TLS pair
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw, make(chan struct{})); code != 2 {
			t.Fatalf("args %v: exit %d, want 2 (stderr: %s)", args, code, errw.String())
		}
		if errw.Len() == 0 {
			t.Fatalf("args %v: no diagnostic on stderr", args)
		}
	}
}

// TestParseBackends pins the -backends grammar.
func TestParseBackends(t *testing.T) {
	specs, err := parseBackends("a:1, b:2=c:3 ,d:4")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct{ addr, ops string }{{"a:1", ""}, {"b:2", "c:3"}, {"d:4", ""}}
	if len(specs) != len(want) {
		t.Fatalf("parsed %d backends, want %d", len(specs), len(want))
	}
	for i, w := range want {
		if specs[i].Addr != w.addr || specs[i].Ops != w.ops {
			t.Errorf("backend %d = %+v, want %+v", i, specs[i], w)
		}
	}
}

// TestFleetDaemonBadListen: an unusable listen address exits 1.
func TestFleetDaemonBadListen(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-listen", "256.256.256.256:1", "-backends", "127.0.0.1:1"}, &out, &errw, make(chan struct{}))
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errw.String())
	}
	if errw.Len() == 0 {
		t.Fatal("no diagnostic on stderr")
	}
}
