// Command haac-sim compiles a workload (or Bristol netlist) and runs it
// on the cycle-level HAAC model, reporting timing, traffic, stalls,
// energy and the speedup over a software CPU baseline measured on this
// host.
//
// Usage:
//
//	haac-sim -workload MatMult [-ges 16] [-sww-mb 2] [-dram hbm2] [-reorder full]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"haac/internal/baseline"
	"haac/internal/circuit"
	"haac/internal/compiler"
	"haac/internal/energy"
	"haac/internal/gc"
	"haac/internal/sim"
	"haac/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, simulates and
// reports, and returns the process exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("haac-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "Bristol netlist file")
	workload := fs.String("workload", "", "built-in workload name")
	small := fs.Bool("small", false, "use reduced workload sizes")
	reorder := fs.String("reorder", "full", "baseline, full, or seg")
	esw := fs.Bool("esw", true, "eliminate spent wires")
	swwMB := fs.Float64("sww-mb", 2, "SWW size in MB")
	ges := fs.Int("ges", 16, "gate engines")
	dram := fs.String("dram", "ddr4", "ddr4 or hbm2")
	garbler := fs.Bool("garbler", false, "Garbler pipeline instead of Evaluator")
	noFwd := fs.Bool("no-forwarding", false, "disable the wire forwarding network (ablation)")
	trace := fs.Int("trace", 0, "print a GE-occupancy heatmap with N time buckets")
	reuse := fs.Bool("reuse", false, "print wire reuse-distance statistics")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	c, name, err := loadCircuit(*in, *workload, *small)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var mode compiler.ReorderMode
	switch strings.ToLower(*reorder) {
	case "baseline":
		mode = compiler.Baseline
	case "full":
		mode = compiler.FullReorder
	case "seg", "segment":
		mode = compiler.SegmentReorder
	default:
		fmt.Fprintf(stderr, "unknown reorder mode %q\n", *reorder)
		return 2
	}

	cfg := compiler.Config{
		Reorder: mode, ESW: *esw,
		SWWWires: int(*swwMB * 1024 * 1024 / 16),
		NumGEs:   *ges, GarblerPipeline: *garbler,
	}
	cp, err := compiler.Compile(c, cfg)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	hw := sim.DefaultHW()
	hw.NumGEs = cfg.NumGEs
	hw.SWWWires = cfg.SWWWires
	hw.Garbler = cfg.GarblerPipeline
	hw.Forwarding = !*noFwd
	switch strings.ToLower(*dram) {
	case "ddr4":
		hw.DRAM = sim.DDR4
	case "hbm2":
		hw.DRAM = sim.HBM2
	default:
		fmt.Fprintf(stderr, "unknown DRAM %q\n", *dram)
		return 2
	}

	r, err := sim.Simulate(cp, hw)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	s := c.ComputeStats()
	fmt.Fprintf(stdout, "workload     %s: %d gates (%.1f%% AND)\n", name, s.Gates, s.ANDPercent)
	fmt.Fprintf(stdout, "config       %d GEs, %.3g MB SWW, %s, %s pipeline, forwarding=%v, %s reorder, ESW=%v\n",
		hw.NumGEs, *swwMB, hw.DRAM.Name, party(hw.Garbler), hw.Forwarding, mode, *esw)
	fmt.Fprintf(stdout, "time         %v  (%d cycles @ %.0f MHz)\n", r.Time(), r.TotalCycles, hw.GEClock/1e6)
	fmt.Fprintf(stdout, "  compute    %v  (%d cycles; %d data-stall checks, %d bank conflicts)\n",
		r.ComputeTime(), r.ComputeCycles, r.DataStallCycles, r.BankConflicts)
	fmt.Fprintf(stdout, "  traffic    %d cycles total-stream, %d cycles wire-stream\n", r.TrafficCycles, r.WireTrafficCycles)
	tr := r.Traffic
	fmt.Fprintf(stdout, "traffic      instr %.2f MB, tables %.2f MB, OoR %.2f MB, live %.2f MB, inputs %.2f MB\n",
		mb(tr.InstrBytes), mb(tr.TableBytes), mb(tr.OoRBytes), mb(tr.LiveBytes), mb(tr.InputBytes))

	fmt.Fprintf(stdout, "GEs          %.0f%% utilized (compute phase), load imbalance %.2f\n",
		100*r.Utilization(), r.LoadImbalance())

	b := energy.Energy(r)
	fmt.Fprintf(stdout, "energy       %.3g J (avg %.2f W); half-gate %.0f%%, sram %.0f%%, dram %.0f%%\n",
		b.Total(), energy.AveragePower(r),
		100*b.Normalized().HalfGate, 100*b.Normalized().SRAM, 100*b.Normalized().DRAMPHY)
	fmt.Fprintf(stdout, "area         %.2f mm^2 (HAAC IP, 16 nm)\n", energy.AreaFor(hw.NumGEs, hw.SWWWires*16).Total())

	cpu := baseline.MeasureCPU(gc.RekeyedHasher{}, !hw.Garbler)
	cpuT := cpu.GCTime(s)
	fmt.Fprintf(stdout, "CPU GC       %v on this host (%.0f ns/AND, %.1f ns/XOR) -> speedup %.0fx\n",
		cpuT, cpu.NsPerAND, cpu.NsPerXOR, cpuT.Seconds()/r.Time().Seconds())

	if *reuse {
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, cp.AnalyzeReuse([]int{hw.SWWWires / 4, hw.SWWWires, 4 * hw.SWWWires}))
	}
	if *trace > 0 {
		_, tr, err := sim.SimulateTraced(cp, hw, *trace)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, tr.Render())
	}
	return 0
}

func mb(b int64) float64 { return float64(b) / (1024 * 1024) }

func party(garbler bool) string {
	if garbler {
		return "Garbler"
	}
	return "Evaluator"
}

func loadCircuit(in, workload string, small bool) (*circuit.Circuit, string, error) {
	switch {
	case in != "" && workload != "":
		return nil, "", fmt.Errorf("use either -in or -workload, not both")
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		c, err := circuit.ReadBristol(f)
		return c, in, err
	case workload != "":
		suite := workloads.VIPSuite()
		if small {
			suite = workloads.VIPSuiteSmall()
		}
		suite = append(suite, workloads.MicroSuite()...)
		for _, w := range suite {
			if strings.EqualFold(w.Name, workload) {
				return w.Build(), w.Name, nil
			}
		}
		return nil, "", fmt.Errorf("unknown workload %q", workload)
	}
	return nil, "", fmt.Errorf("one of -in or -workload is required")
}
