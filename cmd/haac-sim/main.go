// Command haac-sim compiles a workload (or Bristol netlist) and runs it
// on the cycle-level HAAC model, reporting timing, traffic, stalls,
// energy and the speedup over a software CPU baseline measured on this
// host.
//
// Usage:
//
//	haac-sim -workload MatMult [-ges 16] [-sww-mb 2] [-dram hbm2] [-reorder full]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"haac/internal/baseline"
	"haac/internal/circuit"
	"haac/internal/compiler"
	"haac/internal/energy"
	"haac/internal/gc"
	"haac/internal/sim"
	"haac/internal/workloads"
)

func main() {
	in := flag.String("in", "", "Bristol netlist file")
	workload := flag.String("workload", "", "built-in workload name")
	small := flag.Bool("small", false, "use reduced workload sizes")
	reorder := flag.String("reorder", "full", "baseline, full, or seg")
	esw := flag.Bool("esw", true, "eliminate spent wires")
	swwMB := flag.Float64("sww-mb", 2, "SWW size in MB")
	ges := flag.Int("ges", 16, "gate engines")
	dram := flag.String("dram", "ddr4", "ddr4 or hbm2")
	garbler := flag.Bool("garbler", false, "Garbler pipeline instead of Evaluator")
	noFwd := flag.Bool("no-forwarding", false, "disable the wire forwarding network (ablation)")
	trace := flag.Int("trace", 0, "print a GE-occupancy heatmap with N time buckets")
	reuse := flag.Bool("reuse", false, "print wire reuse-distance statistics")
	flag.Parse()

	c, name, err := loadCircuit(*in, *workload, *small)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var mode compiler.ReorderMode
	switch strings.ToLower(*reorder) {
	case "baseline":
		mode = compiler.Baseline
	case "full":
		mode = compiler.FullReorder
	case "seg", "segment":
		mode = compiler.SegmentReorder
	default:
		fmt.Fprintf(os.Stderr, "unknown reorder mode %q\n", *reorder)
		os.Exit(2)
	}

	cfg := compiler.Config{
		Reorder: mode, ESW: *esw,
		SWWWires: int(*swwMB * 1024 * 1024 / 16),
		NumGEs:   *ges, GarblerPipeline: *garbler,
	}
	cp, err := compiler.Compile(c, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	hw := sim.DefaultHW()
	hw.NumGEs = cfg.NumGEs
	hw.SWWWires = cfg.SWWWires
	hw.Garbler = cfg.GarblerPipeline
	hw.Forwarding = !*noFwd
	switch strings.ToLower(*dram) {
	case "ddr4":
		hw.DRAM = sim.DDR4
	case "hbm2":
		hw.DRAM = sim.HBM2
	default:
		fmt.Fprintf(os.Stderr, "unknown DRAM %q\n", *dram)
		os.Exit(2)
	}

	r, err := sim.Simulate(cp, hw)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	s := c.ComputeStats()
	fmt.Printf("workload     %s: %d gates (%.1f%% AND)\n", name, s.Gates, s.ANDPercent)
	fmt.Printf("config       %d GEs, %.3g MB SWW, %s, %s pipeline, forwarding=%v, %s reorder, ESW=%v\n",
		hw.NumGEs, *swwMB, hw.DRAM.Name, party(hw.Garbler), hw.Forwarding, mode, *esw)
	fmt.Printf("time         %v  (%d cycles @ %.0f MHz)\n", r.Time(), r.TotalCycles, hw.GEClock/1e6)
	fmt.Printf("  compute    %v  (%d cycles; %d data-stall checks, %d bank conflicts)\n",
		r.ComputeTime(), r.ComputeCycles, r.DataStallCycles, r.BankConflicts)
	fmt.Printf("  traffic    %d cycles total-stream, %d cycles wire-stream\n", r.TrafficCycles, r.WireTrafficCycles)
	tr := r.Traffic
	fmt.Printf("traffic      instr %.2f MB, tables %.2f MB, OoR %.2f MB, live %.2f MB, inputs %.2f MB\n",
		mb(tr.InstrBytes), mb(tr.TableBytes), mb(tr.OoRBytes), mb(tr.LiveBytes), mb(tr.InputBytes))

	fmt.Printf("GEs          %.0f%% utilized (compute phase), load imbalance %.2f\n",
		100*r.Utilization(), r.LoadImbalance())

	b := energy.Energy(r)
	fmt.Printf("energy       %.3g J (avg %.2f W); half-gate %.0f%%, sram %.0f%%, dram %.0f%%\n",
		b.Total(), energy.AveragePower(r),
		100*b.Normalized().HalfGate, 100*b.Normalized().SRAM, 100*b.Normalized().DRAMPHY)
	fmt.Printf("area         %.2f mm^2 (HAAC IP, 16 nm)\n", energy.AreaFor(hw.NumGEs, hw.SWWWires*16).Total())

	cpu := baseline.MeasureCPU(gc.RekeyedHasher{}, !hw.Garbler)
	cpuT := cpu.GCTime(s)
	fmt.Printf("CPU GC       %v on this host (%.0f ns/AND, %.1f ns/XOR) -> speedup %.0fx\n",
		cpuT, cpu.NsPerAND, cpu.NsPerXOR, cpuT.Seconds()/r.Time().Seconds())

	if *reuse {
		fmt.Println()
		fmt.Println(cp.AnalyzeReuse([]int{hw.SWWWires / 4, hw.SWWWires, 4 * hw.SWWWires}))
	}
	if *trace > 0 {
		_, tr, err := sim.SimulateTraced(cp, hw, *trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(tr.Render())
	}
}

func mb(b int64) float64 { return float64(b) / (1024 * 1024) }

func party(garbler bool) string {
	if garbler {
		return "Garbler"
	}
	return "Evaluator"
}

func loadCircuit(in, workload string, small bool) (*circuit.Circuit, string, error) {
	switch {
	case in != "" && workload != "":
		return nil, "", fmt.Errorf("use either -in or -workload, not both")
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		c, err := circuit.ReadBristol(f)
		return c, in, err
	case workload != "":
		suite := workloads.VIPSuite()
		if small {
			suite = workloads.VIPSuiteSmall()
		}
		suite = append(suite, workloads.MicroSuite()...)
		for _, w := range suite {
			if strings.EqualFold(w.Name, workload) {
				return w.Build(), w.Name, nil
			}
		}
		return nil, "", fmt.Errorf("unknown workload %q", workload)
	}
	return nil, "", fmt.Errorf("one of -in or -workload is required")
}
