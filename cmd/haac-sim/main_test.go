package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSimWorkload(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-workload", "Million-8", "-trace", "4"}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	s := out.String()
	for _, want := range []string{"workload     Million-8", "config       16 GEs", "time", "traffic", "energy", "CPU GC"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestSimBadArgs(t *testing.T) {
	cases := [][]string{
		{},
		{"-workload", "Million-8", "-dram", "sram"},
		{"-workload", "Million-8", "-reorder", "sideways"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code != 2 {
			t.Fatalf("args %v: exit %d, want 2", args, code)
		}
	}
}
