// Command haacbench regenerates every table and figure of the HAAC
// paper's evaluation (§6). By default it runs everything at the paper's
// workload sizes; use -scale small for a quick pass and the per-
// experiment flags to select subsets.
//
// Usage:
//
//	haacbench [-scale paper|small] [-experiments table2,fig6,...]
//
// Experiments: table1 table2 table3 table4 table5 fig6 fig7 fig8 fig9
// fig10 garbler rekey parallel ot transport memory serving chaos
// integrity fleet ablation multicore segsweep coupling (or "all"). The list is defined once in experiments();
// main_test.go checks this comment and the flag help against it, so
// the three cannot drift apart.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"haac/internal/bench"
)

// experiment is one selectable evaluation artifact.
type experiment struct {
	name  string
	title string
	run   func(env *bench.Env) (string, error)
}

// experiments returns every artifact in presentation order — the single
// source of truth for the doc comment, the flag help and the tests.
func experiments() []experiment {
	return []experiment{
		{"table1", "PPC technique comparison", func(*bench.Env) (string, error) {
			return bench.Table1(), nil
		}},
		{"table2", "benchmark characteristics", func(env *bench.Env) (string, error) {
			_, s, err := env.Table2()
			return s, err
		}},
		{"fig6", "compiler optimization speedups over CPU", func(env *bench.Env) (string, error) {
			_, s, err := env.Fig6()
			return s, err
		}},
		{"table3", "wire traffic: segment vs full reorder", func(env *bench.Env) (string, error) {
			_, s, err := env.Table3()
			return s, err
		}},
		{"fig7", "compute vs wire traffic across orderings and SWW sizes", func(env *bench.Env) (string, error) {
			_, s, err := env.Fig7()
			return s, err
		}},
		{"fig8", "GE scaling with DDR4 and HBM2", func(env *bench.Env) (string, error) {
			_, s, err := env.Fig8()
			return s, err
		}},
		{"table4", "area and power breakdown", func(env *bench.Env) (string, error) {
			return env.Table4()
		}},
		{"fig9", "energy breakdown and efficiency vs CPU", func(env *bench.Env) (string, error) {
			_, s, err := env.Fig9()
			return s, err
		}},
		{"fig10", "slowdown vs plaintext", func(env *bench.Env) (string, error) {
			_, s, err := env.Fig10()
			return s, err
		}},
		{"table5", "comparison to prior accelerators", func(env *bench.Env) (string, error) {
			_, s, err := env.Table5()
			return s, err
		}},
		{"garbler", "Garbler vs Evaluator gap", func(env *bench.Env) (string, error) {
			_, s, err := env.GarblerVsEvaluator()
			return s, err
		}},
		{"rekey", "re-keying overhead", func(*bench.Env) (string, error) {
			_, _, s := bench.RekeyingOverhead()
			return s, nil
		}},
		{"parallel", "parallel level-scheduled garbling and pipelined 2PC", func(env *bench.Env) (string, error) {
			_, s, err := env.ParallelGarbling()
			return s, err
		}},
		{"ot", "IKNP OT extension: batched input phase vs DH baseline", func(env *bench.Env) (string, error) {
			_, s, err := env.OTExtension()
			return s, err
		}},
		{"transport", "slab-encoded 2PC transport: bytes, allocations, throughput", func(env *bench.Env) (string, error) {
			_, s, err := env.Transport()
			return s, err
		}},
		{"memory", "precompiled plans: peak-live renaming vs dense wire arrays", func(env *bench.Env) (string, error) {
			_, s, err := env.Memory()
			return s, err
		}},
		{"serving", "concurrent 2PC serving: shared plan cache, sessions and allocs/run", func(env *bench.Env) (string, error) {
			_, s, err := env.Serving()
			return s, err
		}},
		{"chaos", "serving under injected faults: drop rate vs runs/s, reconnects, failed runs", func(env *bench.Env) (string, error) {
			_, s, err := env.Chaos()
			return s, err
		}},
		{"integrity", "checksummed wire tier: overhead vs legacy, corruption detect/resume", func(env *bench.Env) (string, error) {
			_, s, err := env.Integrity()
			return s, err
		}},
		{"fleet", "digest-sharded front proxy: backends vs runs/s, failover, plan locality", func(env *bench.Env) (string, error) {
			_, s, err := env.Fleet()
			return s, err
		}},
		{"ablation", "design-choice ablations (forwarding, push OoR, SWW, banking)", func(env *bench.Env) (string, error) {
			_, s, err := env.Ablations()
			return s, err
		}},
		{"multicore", "future work: multiple HAAC cores (§6.5)", func(env *bench.Env) (string, error) {
			_, s, err := env.MultiCore()
			return s, err
		}},
		{"segsweep", "segment-size study (§4.2.1)", func(env *bench.Env) (string, error) {
			_, s, err := env.SegmentSweep()
			return s, err
		}},
		{"coupling", "decoupled-model validation (finite queues vs max bound)", func(env *bench.Env) (string, error) {
			_, s, err := env.Coupling()
			return s, err
		}},
	}
}

// experimentNames returns the selectable names in order.
func experimentNames() []string {
	exps := experiments()
	names := make([]string, len(exps))
	for i, e := range exps {
		names[i] = e.name
	}
	return names
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is the testable entry point: it parses args, runs the
// selected experiments and returns the process exit status.
func realMain(args []string, stdout, stderr io.Writer) int {
	exps := experiments()
	fs := flag.NewFlagSet("haacbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scaleFlag := fs.String("scale", "paper", "workload scale: paper or small")
	expFlag := fs.String("experiments", "all",
		"comma-separated experiment list ("+strings.Join(experimentNames(), ", ")+", all)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	scale, err := bench.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	known := map[string]bool{"all": true}
	for _, e := range exps {
		known[e.name] = true
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		name := strings.TrimSpace(strings.ToLower(e))
		if name == "" {
			continue
		}
		if !known[name] {
			fmt.Fprintf(stderr, "unknown experiment %q (want %s or all)\n",
				name, strings.Join(experimentNames(), ", "))
			return 2
		}
		want[name] = true
	}
	all := want["all"]

	env := bench.NewEnv(scale)
	fmt.Fprintf(stdout, "HAAC evaluation harness — scale=%s\n", scale)
	fmt.Fprintf(stdout, "==================================================\n\n")

	for _, e := range exps {
		if !all && !want[e.name] {
			continue
		}
		start := time.Now()
		out, err := e.run(env)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", e.name, err)
			return 1
		}
		fmt.Fprintf(stdout, "## %s (%s)\n\n%s\n[%s in %v]\n\n", e.name, e.title, out, e.name, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
