// Command haacbench regenerates every table and figure of the HAAC
// paper's evaluation (§6). By default it runs everything at the paper's
// workload sizes; use -scale small for a quick pass and the per-
// experiment flags to select subsets.
//
// Usage:
//
//	haacbench [-scale paper|small] [-experiments table2,fig6,...]
//
// Experiments: table1 table2 table3 table4 table5 fig6 fig7 fig8 fig9
// fig10 garbler rekey parallel ot transport ablation multicore segsweep
// coupling (or "all").
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"haac/internal/bench"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is the testable entry point: it parses args, runs the
// selected experiments and returns the process exit status.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("haacbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scaleFlag := fs.String("scale", "paper", "workload scale: paper or small")
	expFlag := fs.String("experiments", "all", "comma-separated experiment list (table1..table5, fig6..fig10, garbler, rekey, parallel, ot, transport, ablation, multicore, segsweep, coupling, all)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	scale, err := bench.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	env := bench.NewEnv(scale)
	fmt.Fprintf(stdout, "HAAC evaluation harness — scale=%s\n", scale)
	fmt.Fprintf(stdout, "==================================================\n\n")

	status := 0
	run := func(name, title string, f func() (string, error)) {
		if !sel(name) || status != 0 {
			return
		}
		start := time.Now()
		out, err := f()
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", name, err)
			status = 1
			return
		}
		fmt.Fprintf(stdout, "## %s (%s)\n\n%s\n[%s in %v]\n\n", name, title, out, name, time.Since(start).Round(time.Millisecond))
	}

	run("table1", "PPC technique comparison", func() (string, error) {
		return bench.Table1(), nil
	})
	run("table2", "benchmark characteristics", func() (string, error) {
		_, s, err := env.Table2()
		return s, err
	})
	run("fig6", "compiler optimization speedups over CPU", func() (string, error) {
		_, s, err := env.Fig6()
		return s, err
	})
	run("table3", "wire traffic: segment vs full reorder", func() (string, error) {
		_, s, err := env.Table3()
		return s, err
	})
	run("fig7", "compute vs wire traffic across orderings and SWW sizes", func() (string, error) {
		_, s, err := env.Fig7()
		return s, err
	})
	run("fig8", "GE scaling with DDR4 and HBM2", func() (string, error) {
		_, s, err := env.Fig8()
		return s, err
	})
	run("table4", "area and power breakdown", func() (string, error) {
		return env.Table4()
	})
	run("fig9", "energy breakdown and efficiency vs CPU", func() (string, error) {
		_, s, err := env.Fig9()
		return s, err
	})
	run("fig10", "slowdown vs plaintext", func() (string, error) {
		_, s, err := env.Fig10()
		return s, err
	})
	run("table5", "comparison to prior accelerators", func() (string, error) {
		_, s, err := env.Table5()
		return s, err
	})
	run("garbler", "Garbler vs Evaluator gap", func() (string, error) {
		_, s, err := env.GarblerVsEvaluator()
		return s, err
	})
	run("rekey", "re-keying overhead", func() (string, error) {
		_, s := bench.RekeyingOverhead()
		return s, nil
	})
	run("parallel", "parallel level-scheduled garbling and pipelined 2PC", func() (string, error) {
		_, s, err := env.ParallelGarbling()
		return s, err
	})
	run("ot", "IKNP OT extension: batched input phase vs DH baseline", func() (string, error) {
		_, s, err := env.OTExtension()
		return s, err
	})
	run("transport", "slab-encoded 2PC transport: bytes, allocations, throughput", func() (string, error) {
		_, s, err := env.Transport()
		return s, err
	})
	run("ablation", "design-choice ablations (forwarding, push OoR, SWW, banking)", func() (string, error) {
		_, s, err := env.Ablations()
		return s, err
	})
	run("multicore", "future work: multiple HAAC cores (§6.5)", func() (string, error) {
		_, s, err := env.MultiCore()
		return s, err
	})
	run("segsweep", "segment-size study (§4.2.1)", func() (string, error) {
		_, s, err := env.SegmentSweep()
		return s, err
	})
	run("coupling", "decoupled-model validation (finite queues vs max bound)", func() (string, error) {
		_, s, err := env.Coupling()
		return s, err
	})
	return status
}
