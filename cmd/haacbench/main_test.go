package main

import (
	"bytes"
	"io"
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestExperimentListConsistent reconciles the three places the
// experiment list appears: the experiments() table (source of truth),
// the package doc comment, and the -experiments flag help (generated
// from the table, checked here anyway via the rendered usage).
func TestExperimentListConsistent(t *testing.T) {
	names := experimentNames()
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" || n != strings.ToLower(n) || strings.ContainsAny(n, " ,") {
			t.Errorf("experiment name %q is not a clean lower-case token", n)
		}
		if seen[n] {
			t.Errorf("experiment name %q duplicated", n)
		}
		seen[n] = true
	}

	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(src[:bytes.Index(src, []byte("package main"))])
	// Whole-token matching: a substring check would let short names like
	// "ot" match inside unrelated words ("cannot") and hide drift.
	docTokens := map[string]bool{}
	for _, tok := range regexp.MustCompile(`[a-z0-9]+`).FindAllString(doc, -1) {
		docTokens[tok] = true
	}
	for _, n := range names {
		if !docTokens[n] {
			t.Errorf("doc comment does not mention experiment %q", n)
		}
	}

	var errw bytes.Buffer
	if code := realMain([]string{"-h"}, io.Discard, &errw); code != 0 {
		t.Fatalf("-h exited %d", code)
	}
	usage := errw.String()
	for _, n := range names {
		if !strings.Contains(usage, n) {
			t.Errorf("flag help does not mention experiment %q", n)
		}
	}
}

// TestAllExperimentNamesSelectable: every listed name must be accepted
// by -experiments (execution is covered per-experiment elsewhere; an
// unknown name is a hard usage error, tested below).
func TestAllExperimentNamesSelectable(t *testing.T) {
	// One fast experiment actually runs end to end to keep the selection
	// machinery honest; the others are validated against the known set.
	var out, errw bytes.Buffer
	if code := realMain([]string{"-scale", "small", "-experiments", "rekey"}, &out, &errw); code != 0 {
		t.Fatalf("rekey exit %d, stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "paper: +27.5%") {
		t.Fatalf("rekey output missing paper reference:\n%s", out.String())
	}

	known := map[string]bool{}
	for _, n := range experimentNames() {
		known[n] = true
	}
	for _, n := range []string{
		"table1", "table2", "table3", "table4", "table5",
		"fig6", "fig7", "fig8", "fig9", "fig10",
		"garbler", "rekey", "parallel", "ot", "transport",
		"memory", "serving", "chaos", "integrity", "fleet", "ablation", "multicore", "segsweep", "coupling",
	} {
		if !known[n] {
			t.Errorf("documented experiment %q is not in experiments()", n)
		}
	}
	if len(known) != 24 {
		t.Errorf("experiments() has %d entries, docs list 24 — update both", len(known))
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	var out, errw bytes.Buffer
	if code := realMain([]string{"-experiments", "fig99"}, &out, &errw); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "unknown experiment") {
		t.Fatalf("no diagnostic: %s", errw.String())
	}
}

func TestBenchSelectedExperiments(t *testing.T) {
	var out, errw bytes.Buffer
	code := realMain([]string{"-scale", "small", "-experiments", "table1,parallel"}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	s := out.String()
	for _, want := range []string{"scale=small", "## table1", "## parallel", "2PC pipe ms"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "## table2") {
		t.Fatal("unselected experiment ran")
	}
}

func TestBenchOTAndTransportExperiments(t *testing.T) {
	var out, errw bytes.Buffer
	code := realMain([]string{"-scale", "small", "-experiments", "ot,transport"}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	s := out.String()
	for _, want := range []string{"## ot", "allocs/OT", "## transport", "allocs/table"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

// TestBenchMemoryExperiment runs the memory experiment end to end and
// checks the renaming invariant the table reports: peak-live slot width
// strictly below total wires on every VIP workload.
func TestBenchMemoryExperiment(t *testing.T) {
	var out, errw bytes.Buffer
	code := realMain([]string{"-scale", "small", "-experiments", "memory"}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	s := out.String()
	for _, want := range []string{"## memory", "peak-live", "plan allocs/run"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestBenchBadArgs(t *testing.T) {
	var out, errw bytes.Buffer
	if code := realMain([]string{"-scale", "galactic"}, &out, &errw); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "unknown scale") {
		t.Fatalf("no diagnostic: %s", errw.String())
	}
}
