package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestBenchSelectedExperiments(t *testing.T) {
	var out, errw bytes.Buffer
	code := realMain([]string{"-scale", "small", "-experiments", "table1,parallel"}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	s := out.String()
	for _, want := range []string{"scale=small", "## table1", "## parallel", "2PC pipe ms"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "## table2") {
		t.Fatal("unselected experiment ran")
	}
}

func TestBenchOTAndTransportExperiments(t *testing.T) {
	var out, errw bytes.Buffer
	code := realMain([]string{"-scale", "small", "-experiments", "ot,transport"}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	s := out.String()
	for _, want := range []string{"## ot", "allocs/OT", "## transport", "allocs/table"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestBenchBadArgs(t *testing.T) {
	var out, errw bytes.Buffer
	if code := realMain([]string{"-scale", "galactic"}, &out, &errw); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "unknown scale") {
		t.Fatalf("no diagnostic: %s", errw.String())
	}
}
