// Command haacd is the serving garbler daemon: one process plays the
// garbler for many concurrent evaluator sessions over TCP, sharing
// precompiled execution plans and pooled garbling runners across them.
// Evaluators connect with `haac-run -role client` (or haac.Dial) using
// the workload name as the circuit id; the session handshake verifies a
// SHA-256 digest of the circuit, so both sides must build the same
// workload.
//
// Example — serve the millionaires' circuit and the small VIP suite
// with the operations sidecar on :9090:
//
//	haacd -listen :9100 -ops :9090 -workloads Million-8,DotProd-S -value 200
//
// The -ops listener speaks plain HTTP: GET /healthz answers 200 "ok"
// while serving and 503 "draining" during shutdown, and GET /metrics
// exports the serving counters (sessions, runs, bytes, plan-cache
// hit/miss/eviction, refusals, run latency) in Prometheus text format.
// -max-sessions sheds excess connections at handshake with a typed
// busy refusal; -run-timeout bounds each garbled run so a stalled peer
// cannot pin a session; -allow-insecure-ot must be set explicitly
// before the daemon accepts sessions requesting the choice-revealing
// insecure OT (benchmarks only — never enable it facing real peers).
// -max-circuit-bytes and -max-run-bytes set per-session resource
// budgets: oversized circuits are refused at handshake and runs that
// outgrow their declared stream size are cut off, both with typed
// refusals, so one greedy session cannot starve the rest.
// -no-integrity declines the checksummed-frame wire tier that clients
// request by default; they fall back to the legacy unframed wire.
// -no-pooled-ot likewise declines the precomputed-OT session tier
// (clients dialing with a pool size fall back to on-demand OT), and
// -max-pool caps how many banked OT correlations one pooled session
// may hold server-side (~32 bytes each; 0 = the 65536 default).
// -tls-cert/-tls-key (a PEM pair, set together) wrap the session
// listener in TLS; clients then dial with RunOptions.TLS. The ops
// sidecar stays plain HTTP either way — firewall it to the control
// plane.
//
// SIGINT/SIGTERM drain gracefully: listeners stop accepting, idle
// sessions disconnect, in-flight runs get -drain-timeout to finish
// (stragglers are force-closed), then the daemon reports its serving
// totals and exits.
package main

import (
	"crypto/tls"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"haac/internal/circuit"
	"haac/internal/server"
	"haac/internal/workloads"
)

func main() {
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		close(stop)
	}()
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, stop))
}

// run is the testable entry point: it parses args, serves until stop
// closes (or the listener fails), and returns the process exit status.
func run(args []string, stdout, stderr io.Writer, stop <-chan struct{}) int {
	fs := flag.NewFlagSet("haacd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "127.0.0.1:9100", "listen address")
	ops := fs.String("ops", "", "operations HTTP address serving /healthz and /metrics (empty = disabled)")
	names := fs.String("workloads", "all", "comma-separated workload names to serve (small VIP + micro suites), or all")
	value := fs.Uint64("value", 0, "garbler input value, packed little-endian into each circuit's garbler bits")
	workers := fs.Int("workers", 0, "garbling workers per session (0 = sequential)")
	cacheSize := fs.Int("plan-cache", 0, "plan cache entries (0 = one per served circuit)")
	maxSessions := fs.Int("max-sessions", 0, "concurrent session cap; excess connections are refused busy at handshake (0 = unlimited)")
	runTimeout := fs.Duration("run-timeout", 0, "per-run deadline; a peer stalling mid-run past it loses the session (0 = none)")
	drainTimeout := fs.Duration("drain-timeout", 0, "shutdown grace for in-flight runs before force-close (0 = 30s default)")
	allowInsecure := fs.Bool("allow-insecure-ot", false, "accept sessions requesting the choice-revealing insecure OT (benchmarks only)")
	noIntegrity := fs.Bool("no-integrity", false, "decline the checksummed-frame wire tier; integrity clients fall back to the legacy wire")
	noPooled := fs.Bool("no-pooled-ot", false, "decline the precomputed-OT session tier; pooled clients fall back to on-demand OT")
	maxPool := fs.Int("max-pool", 0, "max banked OT correlations per pooled session, ~32 bytes each (0 = 65536 default)")
	maxCircuitBytes := fs.Int64("max-circuit-bytes", 0, "refuse circuits whose labels and tables would hold more resident bytes than this (0 = unlimited)")
	maxRunBytes := fs.Int64("max-run-bytes", 0, "per-run transport byte budget; breaching runs are cut off with a typed refusal (0 = unlimited)")
	tlsCert := fs.String("tls-cert", "", "PEM certificate for TLS on the session listener (requires -tls-key; empty = plaintext)")
	tlsKey := fs.String("tls-key", "", "PEM private key for TLS on the session listener (requires -tls-cert)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	specs, err := specsFor(*names, *value)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	tlsCfg, err := tlsFor(*tlsCert, *tlsKey)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	srv, err := server.New(server.Config{
		Circuits:         specs,
		PlanCacheSize:    *cacheSize,
		Workers:          *workers,
		MaxSessions:      *maxSessions,
		RunTimeout:       *runTimeout,
		DrainTimeout:     *drainTimeout,
		AllowInsecureOT:  *allowInsecure,
		TLS:              tlsCfg,
		DisableIntegrity: *noIntegrity,
		DisablePooledOT:  *noPooled,
		MaxPoolSize:      *maxPool,
		MaxCircuitBytes:  *maxCircuitBytes,
		MaxRunBytes:      *maxRunBytes,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	var opsLn net.Listener
	if *ops != "" {
		opsLn, err = net.Listen("tcp", *ops)
		if err != nil {
			ln.Close()
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	proto := "plaintext"
	if tlsCfg != nil {
		proto = "TLS"
	}
	fmt.Fprintf(stdout, "haacd: serving %d circuits on %s (%s)\n", len(specs), ln.Addr(), proto)
	if opsLn != nil {
		fmt.Fprintf(stdout, "haacd: ops endpoints on http://%s (/healthz, /metrics)\n", opsLn.Addr())
	}
	for _, spec := range specs {
		d, _ := srv.Digest(spec.ID)
		fmt.Fprintf(stdout, "  %-16s %d gates  sha256:%x\n", spec.ID, len(spec.Circuit.Gates), d[:8])
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	// A nil channel never delivers, so the select below ignores the
	// sidecar when -ops is unset.
	var opsErrc chan error
	if opsLn != nil {
		opsErrc = make(chan error, 1)
		go func() { opsErrc <- srv.ServeOps(opsLn) }()
	}
	select {
	case err := <-errc:
		// Serve only returns on its own when the listener breaks.
		srv.Close()
		fmt.Fprintln(stderr, err)
		return 1
	case err := <-opsErrc:
		// ServeOps only returns on its own when the ops listener breaks.
		srv.Close()
		fmt.Fprintln(stderr, err)
		return 1
	case <-stop:
		fmt.Fprintln(stdout, "haacd: draining sessions")
		srv.Close()
		<-errc
		st := srv.Stats()
		fmt.Fprintf(stdout, "haacd: served %d runs over %d sessions (%d bytes out, cache %d/%d hit/miss, %d refused, %d force-closed)\n",
			st.RunsServed, st.SessionsTotal, st.BytesOut, st.CacheHits, st.CacheMisses, st.SessionsRefused, st.SessionsForceClosed)
		return 0
	}
}

// tlsFor loads the listener TLS configuration from a PEM pair; both
// flags empty keeps the plaintext default.
func tlsFor(certFile, keyFile string) (*tls.Config, error) {
	if certFile == "" && keyFile == "" {
		return nil, nil
	}
	if certFile == "" || keyFile == "" {
		return nil, errors.New("-tls-cert and -tls-key must be set together")
	}
	cert, err := tls.LoadX509KeyPair(certFile, keyFile)
	if err != nil {
		return nil, fmt.Errorf("loading TLS key pair: %w", err)
	}
	return &tls.Config{Certificates: []tls.Certificate{cert}}, nil
}

// specsFor resolves the served circuit set: every named workload from
// the small VIP + micro suites, with the garbler's input bits packed
// from value once and reused across runs.
func specsFor(names string, value uint64) ([]server.CircuitSpec, error) {
	suite := append(workloads.VIPSuiteSmall(), workloads.MicroSuite()...)
	byName := map[string]workloads.Workload{}
	var all []string
	for _, w := range suite {
		byName[strings.ToLower(w.Name)] = w
		all = append(all, w.Name)
	}
	var picked []workloads.Workload
	if strings.EqualFold(names, "all") {
		picked = suite
	} else {
		for _, n := range strings.Split(names, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			w, ok := byName[strings.ToLower(n)]
			if !ok {
				return nil, fmt.Errorf("unknown workload %q; available: %s", n, strings.Join(all, ", "))
			}
			picked = append(picked, w)
		}
	}
	if len(picked) == 0 {
		return nil, fmt.Errorf("no workloads selected; available: %s", strings.Join(all, ", "))
	}
	specs := make([]server.CircuitSpec, len(picked))
	for i, w := range picked {
		c := w.Build()
		bits := circuit.UintToBools(value, c.GarblerInputs)
		specs[i] = server.CircuitSpec{
			ID:      w.Name,
			Circuit: c,
			Inputs:  func() []bool { return bits },
		}
	}
	return specs, nil
}
