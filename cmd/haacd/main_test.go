package main

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"io"
	"math/big"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"haac/internal/server"
	"haac/internal/workloads"
)

// tsBuffer is a mutex-guarded buffer: the daemon goroutine writes while
// the test polls its contents.
type tsBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *tsBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *tsBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var addrRe = regexp.MustCompile(`serving \d+ circuits on (\S+)`)

// startDaemon runs the daemon's run() on an ephemeral port and waits
// for the serving banner. It returns the bound address, the output
// buffer, the stop trigger and the exit-code channel.
func startDaemon(t *testing.T, args []string) (string, *tsBuffer, func(), <-chan int) {
	t.Helper()
	stdout, stderrw := &tsBuffer{}, &tsBuffer{}
	stop := make(chan struct{})
	code := make(chan int, 1)
	go func() {
		code <- run(append([]string{"-listen", "127.0.0.1:0"}, args...), stdout, stderrw, stop)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := addrRe.FindStringSubmatch(stdout.String()); m != nil {
			var once sync.Once
			return m[1], stdout, func() { once.Do(func() { close(stop) }) }, code
		}
		select {
		case c := <-code:
			t.Fatalf("daemon exited %d before serving:\n%s%s", c, stdout.String(), stderrw.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never printed its banner:\n%s%s", stdout.String(), stderrw.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDaemonServesAndDrains: end-to-end over loopback TCP — the daemon
// serves the millionaires' circuit, a client session computes against
// it repeatedly, and SIGINT-style shutdown drains and reports totals.
func TestDaemonServesAndDrains(t *testing.T) {
	addr, stdout, stop, code := startDaemon(t, []string{"-workloads", "Million-8", "-value", "200"})
	defer stop()

	w := workloads.Workload{}
	for _, cand := range workloads.VIPSuiteSmall() {
		if cand.Name == "Million-8" {
			w = cand
		}
	}
	if w.Build == nil {
		for _, cand := range workloads.MicroSuite() {
			if cand.Name == "Million-8" {
				w = cand
			}
		}
	}
	if w.Build == nil {
		t.Fatal("Million-8 workload not found")
	}
	c := w.Build()
	sess, err := server.Dial(addr, "Million-8", c, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	evalBits := make([]bool, c.EvaluatorInputs)
	evalBits[1] = true
	evalBits[2] = true
	evalBits[4] = true
	evalBits[7] = true // 150
	for i := 0; i < 3; i++ {
		out, err := sess.Run(evalBits)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if len(out) != 1 || !out[0] {
			t.Fatalf("run %d: 200 > 150 should be true, got %v", i, out)
		}
	}
	sess.Close()

	stop()
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("daemon exit %d:\n%s", c, stdout.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not drain:\n%s", stdout.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "draining sessions") {
		t.Errorf("no drain banner:\n%s", out)
	}
	if !strings.Contains(out, "served 3 runs over 1 sessions") {
		t.Errorf("serving totals missing or wrong:\n%s", out)
	}
	if !strings.Contains(out, "sha256:") {
		t.Errorf("circuit digest banner missing:\n%s", out)
	}
}

var opsRe = regexp.MustCompile(`ops endpoints on http://(\S+)`)

// TestDaemonOpsEndpoints: -ops brings up the loopback HTTP sidecar;
// /healthz answers ok while serving and /metrics carries live counters.
func TestDaemonOpsEndpoints(t *testing.T) {
	addr, stdout, stop, code := startDaemon(t, []string{"-ops", "127.0.0.1:0", "-workloads", "Million-8", "-value", "200"})
	defer stop()

	m := opsRe.FindStringSubmatch(stdout.String())
	if m == nil {
		t.Fatalf("no ops banner:\n%s", stdout.String())
	}
	opsURL := "http://" + m[1]

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(opsURL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}
	if codeHZ, body := get("/healthz"); codeHZ != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q, want 200 ok", codeHZ, body)
	}

	// Drive one run so the scrape shows live counters.
	var w workloads.Workload
	for _, cand := range append(workloads.VIPSuiteSmall(), workloads.MicroSuite()...) {
		if cand.Name == "Million-8" {
			w = cand
		}
	}
	c := w.Build()
	sess, err := server.Dial(addr, "Million-8", c, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(make([]bool, c.EvaluatorInputs)); err != nil {
		t.Fatal(err)
	}
	sess.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		_, body := get("/metrics")
		if strings.Contains(body, "haac_runs_total 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics never showed the served run:\n%s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	stop()
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("daemon exit %d:\n%s", c, stdout.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not drain:\n%s", stdout.String())
	}
}

// writeTLSPair mints a self-signed loopback certificate and writes the
// PEM pair to the test's temp dir.
func writeTLSPair(t *testing.T) (certFile, keyFile string, pool *x509.CertPool) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "haacd-test"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:           []net.IP{net.IPv4(127, 0, 0, 1)},
		DNSNames:              []string{"localhost"},
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	certFile, keyFile = filepath.Join(dir, "cert.pem"), filepath.Join(dir, "key.pem")
	if err := os.WriteFile(certFile, pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(keyFile, pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}), 0o600); err != nil {
		t.Fatal(err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	pool = x509.NewCertPool()
	pool.AddCert(leaf)
	return certFile, keyFile, pool
}

// TestDaemonTLS: -tls-cert/-tls-key wrap the session listener; a TLS
// client trusting the pair completes a run, and half a pair is a usage
// error.
func TestDaemonTLS(t *testing.T) {
	certFile, keyFile, pool := writeTLSPair(t)
	addr, stdout, stop, code := startDaemon(t, []string{
		"-workloads", "Million-8", "-value", "200",
		"-tls-cert", certFile, "-tls-key", keyFile,
	})
	defer stop()
	if !strings.Contains(stdout.String(), "(TLS)") {
		t.Errorf("banner does not announce TLS:\n%s", stdout.String())
	}

	var w workloads.Workload
	for _, cand := range append(workloads.VIPSuiteSmall(), workloads.MicroSuite()...) {
		if cand.Name == "Million-8" {
			w = cand
		}
	}
	c := w.Build()
	sess, err := server.Dial(addr, "Million-8", c, server.Options{
		TLS: &tls.Config{RootCAs: pool, ServerName: "localhost"},
	})
	if err != nil {
		t.Fatalf("TLS dial: %v", err)
	}
	if _, err := sess.Run(make([]bool, c.EvaluatorInputs)); err != nil {
		t.Fatalf("TLS run: %v", err)
	}
	sess.Close()

	stop()
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("daemon exit %d:\n%s", c, stdout.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not drain:\n%s", stdout.String())
	}

	for _, args := range [][]string{
		{"-workloads", "Million-8", "-tls-cert", certFile},
		{"-workloads", "Million-8", "-tls-key", keyFile},
		{"-workloads", "Million-8", "-tls-cert", certFile, "-tls-key", certFile},
	} {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw, make(chan struct{})); code != 2 {
			t.Fatalf("args %v: exit %d, want 2 (stderr: %s)", args, code, errw.String())
		}
	}
}

// TestDaemonBadArgs: usage errors exit 2 with a diagnostic.
func TestDaemonBadArgs(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-workloads", "NoSuchThing"},
		{"-workloads", ""},
		{"-workloads", " , "},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		stop := make(chan struct{})
		if code := run(args, &out, &errw, stop); code != 2 {
			t.Fatalf("args %v: exit %d, want 2 (stderr: %s)", args, code, errw.String())
		}
		if errw.Len() == 0 {
			t.Fatalf("args %v: no diagnostic on stderr", args)
		}
	}
}

// TestDaemonBadListen: an unusable listen address exits 1.
func TestDaemonBadListen(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-listen", "256.256.256.256:1", "-workloads", "Million-8"}, &out, &errw, make(chan struct{}))
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errw.String())
	}
	if errw.Len() == 0 {
		t.Fatal("no diagnostic on stderr")
	}
}

// TestSpecsForAll: the default workload set resolves and packs values.
func TestSpecsForAll(t *testing.T) {
	specs, err := specsFor("all", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < 5 {
		t.Fatalf("only %d specs for all", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.ID] {
			t.Fatalf("duplicate spec %q", s.ID)
		}
		seen[s.ID] = true
		bits := s.Inputs()
		if len(bits) != s.Circuit.GarblerInputs {
			t.Fatalf("%s: %d input bits for %d garbler inputs", s.ID, len(bits), s.Circuit.GarblerInputs)
		}
	}
}
