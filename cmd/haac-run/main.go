// Command haac-run executes a real two-party garbled-circuits
// computation over TCP: one invocation plays the garbler (listening),
// the other the evaluator (dialing). Labels for the evaluator's inputs
// are delivered with Diffie-Hellman oblivious transfer; tables stream as
// they are garbled — optionally level-pipelined across a worker pool
// with -pipelined/-workers.
//
// Example — the millionaires' problem on two terminals:
//
//	haac-run -role garbler   -listen :9000 -workload Million-8 -value 200
//	haac-run -role evaluator -addr 127.0.0.1:9000 -workload Million-8 -value 150
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"

	"haac/internal/circuit"
	"haac/internal/ot"
	"haac/internal/proto"
	"haac/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, plays the selected
// role and returns the process exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("haac-run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	role := fs.String("role", "", "garbler or evaluator")
	listen := fs.String("listen", ":9000", "garbler listen address")
	addr := fs.String("addr", "127.0.0.1:9000", "evaluator dial address")
	workload := fs.String("workload", "Million-8", "workload name (micro suite or small VIP suite)")
	value := fs.Uint64("value", 0, "this party's integer input (packed little-endian into its input bits)")
	otName := fs.String("ot", "dh", "oblivious transfer: dh, iknp, or insecure (benchmarks only)")
	workers := fs.Int("workers", 0, "parallel garbling/eval workers (0 = sequential engine)")
	pipelined := fs.Bool("pipelined", false, "stream tables level-by-level, overlapping garble/transfer/eval")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	w, err := find(*workload)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	c := w.Build()

	var otp ot.Protocol
	switch strings.ToLower(*otName) {
	case "dh":
		otp = ot.DH
	case "iknp":
		otp = ot.IKNP
	case "insecure":
		otp = ot.Insecure
	default:
		fmt.Fprintf(stderr, "unknown OT %q\n", *otName)
		return 2
	}
	opts := proto.Options{OT: otp, Workers: *workers, Pipelined: *pipelined}

	var conn net.Conn
	switch strings.ToLower(*role) {
	case "garbler":
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer ln.Close()
		fmt.Fprintf(stdout, "garbler: waiting for evaluator on %s (%s: %s)\n", ln.Addr(), w.Name, w.Description)
		conn, err = ln.Accept()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	case "evaluator":
		var err error
		conn, err = net.Dial("tcp", *addr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "evaluator: connected to %s (%s)\n", *addr, w.Name)
	default:
		fmt.Fprintln(stderr, "-role must be garbler or evaluator")
		return 2
	}
	defer conn.Close()

	var out []bool
	if strings.EqualFold(*role, "garbler") {
		bits := circuit.UintToBools(*value, c.GarblerInputs)
		out, err = proto.RunGarbler(conn, c, bits, opts)
	} else {
		bits := circuit.UintToBools(*value, c.EvaluatorInputs)
		out, err = proto.RunEvaluator(conn, c, bits, opts)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "result bits: %v\n", out)
	fmt.Fprintf(stdout, "result as integer: %d\n", circuit.BoolsToUint(out))
	return 0
}

func find(name string) (workloads.Workload, error) {
	suite := append(workloads.VIPSuiteSmall(), workloads.MicroSuite()...)
	for _, w := range suite {
		if strings.EqualFold(w.Name, name) {
			return w, nil
		}
	}
	var names []string
	for _, w := range suite {
		names = append(names, w.Name)
	}
	return workloads.Workload{}, fmt.Errorf("unknown workload %q; available: %s", name, strings.Join(names, ", "))
}
