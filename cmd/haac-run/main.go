// Command haac-run executes a real two-party garbled-circuits
// computation over TCP: one invocation plays the garbler (listening),
// the other the evaluator (dialing). Labels for the evaluator's inputs
// are delivered with Diffie-Hellman oblivious transfer; tables stream as
// they are garbled.
//
// Example — the millionaires' problem on two terminals:
//
//	haac-run -role garbler   -listen :9000 -workload Million-8 -value 200
//	haac-run -role evaluator -addr 127.0.0.1:9000 -workload Million-8 -value 150
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"

	"haac/internal/circuit"
	"haac/internal/ot"
	"haac/internal/proto"
	"haac/internal/workloads"
)

func main() {
	role := flag.String("role", "", "garbler or evaluator")
	listen := flag.String("listen", ":9000", "garbler listen address")
	addr := flag.String("addr", "127.0.0.1:9000", "evaluator dial address")
	workload := flag.String("workload", "Million-8", "workload name (micro suite or small VIP suite)")
	value := flag.Uint64("value", 0, "this party's integer input (packed little-endian into its input bits)")
	otName := flag.String("ot", "dh", "oblivious transfer: dh, iknp, or insecure (benchmarks only)")
	flag.Parse()

	w, err := find(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	c := w.Build()

	var otp ot.Protocol
	switch strings.ToLower(*otName) {
	case "dh":
		otp = ot.DH
	case "iknp":
		otp = ot.IKNP
	case "insecure":
		otp = ot.Insecure
	default:
		fmt.Fprintf(os.Stderr, "unknown OT %q\n", *otName)
		os.Exit(2)
	}
	opts := proto.Options{OT: otp}

	var conn net.Conn
	switch strings.ToLower(*role) {
	case "garbler":
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		fmt.Printf("garbler: waiting for evaluator on %s (%s: %s)\n", *listen, w.Name, w.Description)
		conn, err = ln.Accept()
		if err != nil {
			fatal(err)
		}
	case "evaluator":
		var err error
		conn, err = net.Dial("tcp", *addr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("evaluator: connected to %s (%s)\n", *addr, w.Name)
	default:
		fmt.Fprintln(os.Stderr, "-role must be garbler or evaluator")
		os.Exit(2)
	}
	defer conn.Close()

	var out []bool
	if strings.EqualFold(*role, "garbler") {
		bits := circuit.UintToBools(*value, c.GarblerInputs)
		out, err = proto.RunGarbler(conn, c, bits, opts)
	} else {
		bits := circuit.UintToBools(*value, c.EvaluatorInputs)
		out, err = proto.RunEvaluator(conn, c, bits, opts)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("result bits: %v\n", out)
	fmt.Printf("result as integer: %d\n", circuit.BoolsToUint(out))
}

func find(name string) (workloads.Workload, error) {
	suite := append(workloads.VIPSuiteSmall(), workloads.MicroSuite()...)
	for _, w := range suite {
		if strings.EqualFold(w.Name, name) {
			return w, nil
		}
	}
	var names []string
	for _, w := range suite {
		names = append(names, w.Name)
	}
	return workloads.Workload{}, fmt.Errorf("unknown workload %q; available: %s", name, strings.Join(names, ", "))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
