// Command haac-run executes a real two-party garbled-circuits
// computation over TCP: one invocation plays the garbler (listening),
// the other the evaluator (dialing). Labels for the evaluator's inputs
// are delivered with Diffie-Hellman oblivious transfer; tables stream as
// they are garbled — optionally level-pipelined across a worker pool
// with -pipelined/-workers.
//
// Example — the millionaires' problem on two terminals:
//
//	haac-run -role garbler   -listen :9000 -workload Million-8 -value 200
//	haac-run -role evaluator -addr 127.0.0.1:9000 -workload Million-8 -value 150
//
// A third role, client, opens a session against a haacd serving daemon
// instead of a peer process and can execute many runs over one
// connection, amortizing the server's precompiled plan; -retries makes
// the session self-healing (transparent reconnect and replay against a
// restarted or flaky daemon):
//
//	haacd -workloads Million-8 -value 200 &
//	haac-run -role client -addr 127.0.0.1:9100 -workload Million-8 -value 150 -runs 8
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"

	"haac/internal/circuit"
	"haac/internal/ot"
	"haac/internal/proto"
	"haac/internal/server"
	"haac/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, plays the selected
// role and returns the process exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("haac-run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	role := fs.String("role", "", "garbler, evaluator, or client (against a haacd daemon)")
	listen := fs.String("listen", ":9000", "garbler listen address")
	addr := fs.String("addr", "127.0.0.1:9000", "evaluator/client dial address")
	workload := fs.String("workload", "Million-8", "workload name (micro suite or small VIP suite)")
	value := fs.Uint64("value", 0, "this party's integer input (packed little-endian into its input bits)")
	otName := fs.String("ot", "dh", "oblivious transfer: dh, iknp, or insecure (benchmarks only)")
	workers := fs.Int("workers", 0, "parallel garbling/eval workers (0 = sequential engine)")
	pipelined := fs.Bool("pipelined", false, "stream tables level-by-level, overlapping garble/transfer/eval")
	runs := fs.Int("runs", 1, "client role: number of runs over the session")
	retries := fs.Int("retries", 0, "client role: max attempts per dial/run (>1 enables transparent reconnect and replay)")
	retryBackoff := fs.Duration("retry-backoff", 0, "client role: base backoff between retries (doubles per attempt, 0 = 50ms default)")
	integrity := fs.Bool("integrity", true, "client role: request the checksummed-frame wire tier (detects corruption, resumes broken transfers; falls back if the server declines)")
	maxRunBytes := fs.Int64("max-run-bytes", 0, "client role: per-run transport byte budget; a breach fails the run with a typed error (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *runs < 1 {
		fmt.Fprintln(stderr, "-runs must be at least 1")
		return 2
	}

	w, err := find(*workload)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	c := w.Build()

	var otp ot.Protocol
	switch strings.ToLower(*otName) {
	case "dh":
		otp = ot.DH
	case "iknp":
		otp = ot.IKNP
	case "insecure":
		otp = ot.Insecure
	default:
		fmt.Fprintf(stderr, "unknown OT %q\n", *otName)
		return 2
	}
	opts := proto.Options{OT: otp, Workers: *workers, Pipelined: *pipelined}

	if strings.EqualFold(*role, "client") {
		return runClient(stdout, stderr, *addr, w, *value, *runs, server.Options{
			OT: otp, Workers: *workers, Pipelined: *pipelined,
			Integrity: *integrity, MaxRunBytes: *maxRunBytes,
			Retry: server.RetryPolicy{MaxAttempts: *retries, BaseBackoff: *retryBackoff},
		})
	}

	var conn net.Conn
	switch strings.ToLower(*role) {
	case "garbler":
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer ln.Close()
		fmt.Fprintf(stdout, "garbler: waiting for evaluator on %s (%s: %s)\n", ln.Addr(), w.Name, w.Description)
		conn, err = ln.Accept()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	case "evaluator":
		var err error
		conn, err = net.Dial("tcp", *addr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "evaluator: connected to %s (%s)\n", *addr, w.Name)
	default:
		fmt.Fprintln(stderr, "-role must be garbler, evaluator, or client")
		return 2
	}
	defer conn.Close()

	var out []bool
	if strings.EqualFold(*role, "garbler") {
		bits := circuit.UintToBools(*value, c.GarblerInputs)
		out, err = proto.RunGarbler(conn, c, bits, opts)
	} else {
		bits := circuit.UintToBools(*value, c.EvaluatorInputs)
		out, err = proto.RunEvaluator(conn, c, bits, opts)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "result bits: %v\n", out)
	fmt.Fprintf(stdout, "result as integer: %d\n", circuit.BoolsToUint(out))
	return 0
}

// runClient opens a session against a haacd daemon and executes the
// requested number of runs over it, precompiling the circuit client-
// side so every run after the first reuses the session's plan runner.
func runClient(stdout, stderr io.Writer, addr string, w workloads.Workload, value uint64, runs int, opts server.Options) int {
	c := w.Build()
	plan, err := circuit.NewPlan(c)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	opts.Plan = plan
	sess, err := server.Dial(addr, w.Name, c, opts)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer sess.Close()
	wire := "legacy wire"
	if sess.Integrity() {
		wire = "integrity wire"
	}
	fmt.Fprintf(stdout, "client: session open to %s (%s, server plan %d slots, %s)\n", addr, w.Name, sess.NumSlots(), wire)
	bits := circuit.UintToBools(value, c.EvaluatorInputs)
	for i := 0; i < runs; i++ {
		out, err := sess.Run(bits)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "run %d result bits: %v\n", i+1, out)
		fmt.Fprintf(stdout, "run %d result as integer: %d\n", i+1, circuit.BoolsToUint(out))
	}
	if st := sess.Stats(); st.Retries > 0 || st.Reconnects > 0 || st.DialFailures > 0 {
		fmt.Fprintf(stdout, "client: healed %d retried runs (%d resumed mid-stream, %d fully replayed) over %d reconnects (%d failed redials)\n",
			st.Retries, st.Resumes, st.Retries-st.Resumes, st.Reconnects, st.DialFailures)
	}
	if st := sess.Stats(); st.IntegrityFailures > 0 {
		fmt.Fprintf(stdout, "client: detected %d corrupted transfers via frame checksums\n", st.IntegrityFailures)
	}
	return 0
}

func find(name string) (workloads.Workload, error) {
	suite := append(workloads.VIPSuiteSmall(), workloads.MicroSuite()...)
	for _, w := range suite {
		if strings.EqualFold(w.Name, name) {
			return w, nil
		}
	}
	var names []string
	for _, w := range suite {
		names = append(names, w.Name)
	}
	return workloads.Workload{}, fmt.Errorf("unknown workload %q; available: %s", name, strings.Join(names, ", "))
}
