package main

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"haac/internal/circuit"
	"haac/internal/server"
)

// freePort reserves an ephemeral TCP port and releases it for the test
// to reuse. The tiny race window is acceptable for a smoke test.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// runMillionaires drives both roles of the binary's main path against
// each other and returns their outputs.
func runMillionaires(t *testing.T, extra ...string) (gout, eout string) {
	t.Helper()
	addr := freePort(t)

	type result struct {
		code int
		out  string
	}
	gch := make(chan result, 1)
	go func() {
		var out, errw bytes.Buffer
		args := append([]string{
			"-role", "garbler", "-listen", addr,
			"-workload", "Million-8", "-value", "200", "-ot", "insecure",
		}, extra...)
		code := run(args, &out, &errw)
		gch <- result{code, out.String() + errw.String()}
	}()

	// Dial side: retry until the garbler is listening.
	var eres result
	deadline := time.Now().Add(5 * time.Second)
	for {
		var out, errw bytes.Buffer
		args := append([]string{
			"-role", "evaluator", "-addr", addr,
			"-workload", "Million-8", "-value", "150", "-ot", "insecure",
		}, extra...)
		code := run(args, &out, &errw)
		eres = result{code, out.String() + errw.String()}
		if code == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if eres.code != 0 {
		t.Fatalf("evaluator exit %d:\n%s", eres.code, eres.out)
	}
	gres := <-gch
	if gres.code != 0 {
		t.Fatalf("garbler exit %d:\n%s", gres.code, gres.out)
	}
	return gres.out, eres.out
}

func TestRunMillionaires(t *testing.T) {
	gout, eout := runMillionaires(t)
	// 200 > 150: the garbler is richer, result bit 1.
	for _, out := range []string{gout, eout} {
		if !strings.Contains(out, "result as integer: 1") {
			t.Fatalf("expected result 1 in output:\n%s", out)
		}
	}
	if !strings.Contains(gout, "waiting for evaluator") {
		t.Fatalf("garbler banner missing:\n%s", gout)
	}
	if !strings.Contains(eout, "connected to") {
		t.Fatalf("evaluator banner missing:\n%s", eout)
	}
}

func TestRunPipelined(t *testing.T) {
	gout, _ := runMillionaires(t, "-pipelined", "-workers", "4")
	if !strings.Contains(gout, "result as integer: 1") {
		t.Fatalf("pipelined run wrong result:\n%s", gout)
	}
}

// TestRunClientMode drives the client role end to end against an
// in-process serving garbler: one session, several runs, plan reuse.
func TestRunClientMode(t *testing.T) {
	w, err := find("Million-8")
	if err != nil {
		t.Fatal(err)
	}
	c := w.Build()
	garblerBits := circuit.UintToBools(200, c.GarblerInputs)
	srv, err := server.New(server.Config{
		Circuits: []server.CircuitSpec{{
			ID:      w.Name,
			Circuit: c,
			Inputs:  func() []bool { return garblerBits },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	}()

	var out, errw bytes.Buffer
	code := run([]string{
		"-role", "client", "-addr", ln.Addr().String(),
		"-workload", "Million-8", "-value", "150", "-runs", "3",
		"-retries", "3", "-retry-backoff", "1ms",
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("client exit %d:\n%s%s", code, out.String(), errw.String())
	}
	s := out.String()
	if !strings.Contains(s, "session open") || !strings.Contains(s, "server plan") {
		t.Fatalf("session banner missing:\n%s", s)
	}
	for i := 1; i <= 3; i++ {
		if !strings.Contains(s, fmt.Sprintf("run %d result as integer: 1", i)) {
			t.Fatalf("run %d result missing (200 > 150 = 1):\n%s", i, s)
		}
	}

	if st := srv.Stats(); st.CacheMisses != 1 {
		t.Fatalf("server cache misses = %d, want 1", st.CacheMisses)
	}
}

// TestRunClientModeErrors: dial failures and refused circuits exit 1.
func TestRunClientModeErrors(t *testing.T) {
	addr := freePort(t) // nothing listening
	var out, errw bytes.Buffer
	if code := run([]string{"-role", "client", "-addr", addr, "-workload", "Million-8"}, &out, &errw); code != 1 {
		t.Fatalf("dead server: exit %d, want 1", code)
	}
	if errw.Len() == 0 {
		t.Fatal("no diagnostic on stderr")
	}
}

func TestRunBadArgs(t *testing.T) {
	cases := [][]string{
		{"-role", "nonsense"},
		{"-workload", "NoSuchThing", "-role", "garbler"},
		{"-role", "garbler", "-ot", "quantum"},
		{"-role", "client", "-runs", "0"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code != 2 {
			t.Fatalf("args %v: exit %d, want 2 (stderr: %s)", args, code, errw.String())
		}
		if errw.Len() == 0 {
			t.Fatalf("args %v: no diagnostic on stderr", args)
		}
	}
}

func TestFindListsWorkloads(t *testing.T) {
	_, err := find("definitely-not-a-workload")
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	if !strings.Contains(fmt.Sprint(err), "Million-8") {
		t.Fatalf("error should list available workloads: %v", err)
	}
}
