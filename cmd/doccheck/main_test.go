package main

import (
	"bytes"
	"path/filepath"
	"testing"
)

// gatedPackages are the protocol-bearing packages whose doc comments
// serve as the wire-format ground truth (see docs/ARCHITECTURE.md).
// CI runs `go run ./cmd/doccheck` over the same list; this test makes
// the gate part of plain `go test ./...` too.
var gatedPackages = []string{
	"internal/ot",
	"internal/proto",
	"internal/server",
	"internal/fleet",
	"internal/faultnet",
}

func TestGatedPackagesDocumented(t *testing.T) {
	args := make([]string, len(gatedPackages))
	for i, p := range gatedPackages {
		args[i] = filepath.Join("..", "..", filepath.FromSlash(p))
	}
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("doccheck exit %d\n%s%s", code, stdout.String(), stderr.String())
	}
}

func TestRunUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no-args exit %d, want 2", code)
	}
	if code := run([]string{"testdata/no-such-dir"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad-dir exit %d, want 2", code)
	}
}

// TestDetectsViolations feeds the checker a fixture package with one
// of every violation class and asserts each is reported — a gate that
// cannot fail is no gate.
func TestDetectsViolations(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{filepath.Join("testdata", "undocd")}, &stdout, &stderr); code != 1 {
		t.Fatalf("fixture exit %d, want 1\n%s%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"package undocd has no package doc comment",
		"func Naked",
		"type Bare",
		"const Loose",
		"var Stray",
		"method Bare.Method",
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	for _, wrongly := range []string{"Documented", "GroupA", "hidden", "unexported"} {
		if bytes.Contains([]byte(out), []byte(wrongly)) {
			t.Errorf("report flags documented/unexported symbol %q:\n%s", wrongly, out)
		}
	}
}
