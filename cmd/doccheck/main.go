// Command doccheck is the repository's godoc gate: it fails when a
// package in its argument list lacks a package doc comment or exports
// a symbol without one. The wire formats and operational knobs of this
// codebase live in doc comments (docs/ARCHITECTURE.md points at them
// as ground truth), so an undocumented export is a documentation
// regression, not a style nit.
//
// Usage:
//
//	doccheck ./internal/ot ./internal/proto ...
//
// Each argument is a package directory. Test files are ignored. The
// rules match the idiom the repo already follows: every package needs
// a `// Package foo ...` comment on exactly one file; every exported
// top-level type, function, method (on an exported receiver), constant
// and variable needs a doc comment — a comment on a const/var/type
// group covers the group's specs. Exit status 1 lists every violation
// with its position; 0 means clean. CI runs it over the protocol-
// bearing packages, and cmd/doccheck's own test wraps the same check
// so `go test ./...` enforces it without a separate CI step.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run checks every package directory in args and returns the process
// exit status: 2 on usage or parse errors, 1 on violations, 0 clean.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "usage: doccheck <package dir> ...")
		return 2
	}
	var violations []string
	for _, dir := range args {
		v, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(stderr, "doccheck: %v\n", err)
			return 2
		}
		violations = append(violations, v...)
	}
	if len(violations) > 0 {
		sort.Strings(violations)
		for _, v := range violations {
			fmt.Fprintln(stdout, v)
		}
		fmt.Fprintf(stdout, "doccheck: %d undocumented exported symbols/packages\n", len(violations))
		return 1
	}
	return 0
}

// checkDir parses one package directory (test files excluded) and
// returns its violations.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	var violations []string
	for name, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
			violations = append(violations, checkFile(fset, f)...)
		}
		if !hasPkgDoc {
			violations = append(violations, fmt.Sprintf("%s: package %s has no package doc comment", dir, name))
		}
	}
	return violations, nil
}

// checkFile walks one file's top-level declarations.
func checkFile(fset *token.FileSet, f *ast.File) []string {
	var violations []string
	report := func(pos token.Pos, what string) {
		violations = append(violations, fmt.Sprintf("%s: %s is exported but undocumented", fset.Position(pos), what))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil {
				recv := receiverName(d.Recv)
				if !ast.IsExported(recv) {
					continue // method on an unexported type: not API surface
				}
				report(d.Pos(), fmt.Sprintf("method %s.%s", recv, d.Name.Name))
				continue
			}
			report(d.Pos(), "func "+d.Name.Name)
		case *ast.GenDecl:
			// A comment on the group documents every spec in it — the
			// repo's idiom for error/const blocks.
			if d.Doc != nil {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type "+s.Name.Name)
					}
				case *ast.ValueSpec:
					if s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), kindName(d.Tok)+" "+n.Name)
						}
					}
				}
			}
		}
	}
	return violations
}

// receiverName extracts the receiver's base type name, stripping
// pointers and type parameters.
func receiverName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// kindName renders the declaration keyword for a violation message.
func kindName(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
