package undocd

func Naked() {}

type Bare struct{}

func (Bare) Method() {}

const Loose = 1

var Stray = 2

// Documented has a comment and must not be flagged.
func Documented() {}

// Exported group members are covered by the group comment.
const (
	GroupA = iota
	GroupB
)

func hidden() {}

type unexported struct{}

func (unexported) Method() {}

var _ = hidden
var _ = unexported{}
