// Command haac-compile lowers a Boolean circuit to a HAAC program,
// running the paper's optimization passes, and reports program and
// traffic statistics. Circuits come either from a Bristol-format netlist
// file (the EMP flow of Fig. 5) or from a built-in workload generator.
//
// Usage:
//
//	haac-compile -workload MatMult [-reorder full] [-esw] [-sww-mb 2] [-ges 16] [-o prog.haac]
//	haac-compile -in netlist.txt -reorder seg -o prog.haac
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"haac/internal/circuit"
	"haac/internal/compiler"
	"haac/internal/isa"
	"haac/internal/opt"
	"haac/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, compiles and reports,
// and returns the process exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("haac-compile", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "Bristol netlist file")
	workload := fs.String("workload", "", "built-in workload name (BubbSt, DotProd, Merse, Triangle, Hamm, MatMult, ReLU, GradDesc, or a micro benchmark)")
	small := fs.Bool("small", false, "use reduced workload sizes")
	reorder := fs.String("reorder", "full", "instruction schedule: baseline, full, or seg")
	esw := fs.Bool("esw", true, "eliminate spent wires (live-bit optimization)")
	swwMB := fs.Float64("sww-mb", 2, "sliding wire window size in MB")
	ges := fs.Int("ges", 16, "number of gate engines")
	garbler := fs.Bool("garbler", false, "schedule for the Garbler pipeline (21-stage) instead of the Evaluator (18)")
	optimize := fs.Bool("optimize", false, "run netlist optimizations (constant folding, CSE, DCE) before compiling")
	disasm := fs.Int("disasm", 0, "print a disassembly of the first N instructions")
	out := fs.String("o", "", "output file for the serialized program")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	c, name, err := loadCircuit(*in, *workload, *small)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *optimize {
		oc, res, err := opt.Optimize(c)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintln(stdout, res)
		c = oc
	}

	var mode compiler.ReorderMode
	switch strings.ToLower(*reorder) {
	case "baseline":
		mode = compiler.Baseline
	case "full":
		mode = compiler.FullReorder
	case "seg", "segment":
		mode = compiler.SegmentReorder
	default:
		fmt.Fprintf(stderr, "unknown reorder mode %q\n", *reorder)
		return 2
	}

	cfg := compiler.Config{
		Reorder:         mode,
		ESW:             *esw,
		SWWWires:        int(*swwMB * 1024 * 1024 / 16),
		NumGEs:          *ges,
		GarblerPipeline: *garbler,
	}
	cp, err := compiler.Compile(c, cfg)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	s := c.ComputeStats()
	p := &cp.Program
	fmt.Fprintf(stdout, "circuit   %s: %d gates (%.1f%% AND), %d levels, ILP %.0f\n",
		name, s.Gates, s.ANDPercent, s.Levels, s.ILP)
	fmt.Fprintf(stdout, "program   %d instructions (%d AND), %d inputs, %d outputs\n",
		len(p.Instrs), p.NumANDs(), p.NumInputs, len(p.OutputAddrs))
	fmt.Fprintf(stdout, "schedule  %s reorder, ESW=%v, %d GEs, %.3g MB SWW (%s pipeline)\n",
		mode, *esw, *ges, *swwMB, party(*garbler))
	fmt.Fprintf(stdout, "traffic   live wires %d, OoR reads %d, spent %.2f%%\n",
		cp.Traffic.LiveWires, cp.Traffic.OoRWires, cp.Traffic.SpentPercent())
	for g, st := range cp.Streams {
		if g < 4 || g == len(cp.Streams)-1 {
			fmt.Fprintf(stdout, "  GE%-2d  %d instrs, %d tables, %d OoRW entries\n",
				g, len(st), cp.TablesPerGE[g], len(cp.OoRW[g]))
		} else if g == 4 {
			fmt.Fprintf(stdout, "  ...\n")
		}
	}

	if *disasm > 0 {
		if err := isa.Disassemble(stdout, p, *disasm); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		n, err := p.WriteTo(f)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s (%d bytes)\n", *out, n)
	}
	return 0
}

func party(garbler bool) string {
	if garbler {
		return "Garbler"
	}
	return "Evaluator"
}

func loadCircuit(in, workload string, small bool) (*circuit.Circuit, string, error) {
	switch {
	case in != "" && workload != "":
		return nil, "", fmt.Errorf("use either -in or -workload, not both")
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		c, err := circuit.ReadBristol(f)
		return c, in, err
	case workload != "":
		w, err := findWorkload(workload, small)
		if err != nil {
			return nil, "", err
		}
		return w.Build(), w.Name, nil
	}
	return nil, "", fmt.Errorf("one of -in or -workload is required")
}

func findWorkload(name string, small bool) (workloads.Workload, error) {
	suite := workloads.VIPSuite()
	if small {
		suite = workloads.VIPSuiteSmall()
	}
	suite = append(suite, workloads.MicroSuite()...)
	for _, w := range suite {
		if strings.EqualFold(w.Name, name) {
			return w, nil
		}
	}
	var names []string
	for _, w := range suite {
		names = append(names, w.Name)
	}
	return workloads.Workload{}, fmt.Errorf("unknown workload %q; available: %s", name, strings.Join(names, ", "))
}
