package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCompileWorkload(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-workload", "Hamm-50", "-disasm", "4"}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	s := out.String()
	for _, want := range []string{"circuit   Hamm-50", "program", "schedule  Full reorder", "traffic"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestCompileWritesProgram(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prog.haac")
	var out, errw bytes.Buffer
	code := run([]string{"-workload", "Million-8", "-o", path}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "wrote "+path) {
		t.Fatalf("no write confirmation:\n%s", out.String())
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("serialized program is empty")
	}
}

func TestCompileBadArgs(t *testing.T) {
	cases := [][]string{
		{},                           // neither -in nor -workload
		{"-workload", "NoSuchThing"}, // unknown workload
		{"-workload", "Million-8", "-reorder", "sideways"}, // bad mode
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code != 2 {
			t.Fatalf("args %v: exit %d, want 2", args, code)
		}
	}
}
